package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table used by the experiment
// harness to render paper-style result tables to stdout and to
// EXPERIMENTS.md.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Notes   []string
	maxCols int
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header, maxCols: len(header)}
}

// AddRow appends a row; cells beyond the header width extend the table.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > t.maxCols {
		t.maxCols = len(cells)
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, args...))...)
}

// AddNote appends a free-text footnote rendered below the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, t.maxCols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < t.maxCols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(t.maxCols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < t.maxCols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString(" " + c + " |")
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	b.WriteString("|")
	for i := 0; i < t.maxCols; i++ {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not
// escaped; experiment cells never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
