package stats

import (
	"math"
	"sort"
	"testing"

	"faultexp/internal/xrand"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// TestStreamMatchesSummarize: the single-pass moments must agree with
// the batch two-pass computation on random data.
func TestStreamMatchesSummarize(t *testing.T) {
	rng := xrand.New(7)
	for _, n := range []int{0, 1, 2, 3, 10, 1000} {
		xs := make([]float64, n)
		var s Stream
		for i := range xs {
			xs[i] = rng.NormFloat64()*3 + 10
			s.Add(xs[i])
		}
		want := Summarize(xs)
		if int(s.N()) != want.N {
			t.Fatalf("n=%d: N=%d", n, s.N())
		}
		if n == 0 {
			continue
		}
		if !almostEq(s.Mean(), want.Mean, 1e-12) ||
			!almostEq(s.Var(), want.Var, 1e-9) ||
			!almostEq(s.Std(), want.Std, 1e-9) ||
			s.Min() != want.Min || s.Max() != want.Max ||
			!almostEq(s.StdErr(), want.StdErr, 1e-9) {
			t.Errorf("n=%d: stream %+v vs batch %+v", n, s.Summary(), want)
		}
	}
}

// TestStreamMerge: merging partial streams must equal streaming the
// concatenation, in any split.
func TestStreamMerge(t *testing.T) {
	rng := xrand.New(9)
	xs := make([]float64, 257)
	var whole Stream
	for i := range xs {
		xs[i] = rng.Float64()*100 - 50
		whole.Add(xs[i])
	}
	for _, cut := range []int{0, 1, 100, 256, 257} {
		var a, b Stream
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() || !almostEq(a.Mean(), whole.Mean(), 1e-12) ||
			!almostEq(a.Var(), whole.Var(), 1e-9) ||
			a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Errorf("cut=%d: merged %+v vs whole %+v", cut, a.Summary(), whole.Summary())
		}
	}
}

func TestStreamReset(t *testing.T) {
	var s Stream
	s.Add(3)
	s.Add(5)
	s.Reset()
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("Reset left state: %+v", s)
	}
	s.Add(-2)
	if s.Min() != -2 || s.Max() != -2 || s.Mean() != -2 {
		t.Errorf("post-Reset Add wrong: %+v", s)
	}
}

// TestStreamAddNoAlloc pins the zero-allocation contract of the trial
// hot path.
func TestStreamAddNoAlloc(t *testing.T) {
	var s Stream
	var q = NewP2(0.5)
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(1.5)
		q.Add(1.5)
	})
	if allocs != 0 {
		t.Errorf("Stream.Add/P2Quantile.Add allocate %.1f/op, want 0", allocs)
	}
}

// TestP2SmallSampleExact: up to five observations the estimator must
// return the exact interpolated quantile.
func TestP2SmallSampleExact(t *testing.T) {
	e := NewP2(0.5)
	for _, x := range []float64{9, 1, 5} {
		e.Add(x)
	}
	if got := e.Value(); got != 5 {
		t.Errorf("median of {9,1,5} = %g, want 5", got)
	}
	q := NewP2(0.25)
	q.Add(4)
	if got := q.Value(); got != 4 {
		t.Errorf("single-sample quantile = %g, want 4", got)
	}
}

// TestP2Accuracy: on large iid samples the P² estimate must land close
// to the exact order statistic.
func TestP2Accuracy(t *testing.T) {
	rng := xrand.New(12345)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		e := NewP2(p)
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			e.Add(xs[i])
		}
		sort.Float64s(xs)
		exact := Quantile(xs, p)
		if math.Abs(e.Value()-exact) > 0.05 {
			t.Errorf("p=%g: P² %.4f vs exact %.4f", p, e.Value(), exact)
		}
	}
}

// TestP2Deterministic: the same input order yields the same estimate.
func TestP2Deterministic(t *testing.T) {
	run := func() float64 {
		rng := xrand.New(42)
		e := NewP2(0.5)
		for i := 0; i < 1000; i++ {
			e.Add(rng.Float64())
		}
		return e.Value()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("P² not deterministic: %v vs %v", a, b)
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%g) did not panic", p)
				}
			}()
			NewP2(p)
		}()
	}
}

// TestStreamNonfinite: Stream applies the exact accounting Summarize
// does — NaN/±Inf increment Nonfinite and leave the moments untouched —
// and Merge conserves the count, including through its empty-stream
// fast paths.
func TestStreamNonfinite(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, math.NaN(), 4, math.Inf(1), 9} {
		s.Add(x)
	}
	want := Summarize([]float64{2, math.NaN(), 4, math.Inf(1), 9})
	got := s.Summary()
	if got.N != 3 || got.Nonfinite != 2 {
		t.Fatalf("stream N/Nonfinite = %d/%d, want 3/2", got.N, got.Nonfinite)
	}
	if !almost(got.Mean, want.Mean, 1e-12) || got.Min != want.Min || got.Max != want.Max || !almost(got.Var, want.Var, 1e-12) {
		t.Errorf("stream summary %+v differs from Summarize %+v", got, want)
	}

	// Merge conserves Nonfinite across every branch: into an empty
	// stream, from an empty stream, and between two populated ones.
	var empty, onlyBad, populated Stream
	onlyBad.Add(math.NaN())
	populated.Add(1)
	populated.Add(math.Inf(-1))

	m := empty
	m.Merge(populated) // s.n == 0 path
	if m.N() != 1 || m.Nonfinite() != 1 {
		t.Errorf("merge into empty: n=%d nonfinite=%d", m.N(), m.Nonfinite())
	}
	m = populated
	m.Merge(onlyBad) // o.n == 0 path
	if m.N() != 1 || m.Nonfinite() != 2 {
		t.Errorf("merge of all-nonfinite: n=%d nonfinite=%d", m.N(), m.Nonfinite())
	}
	m = onlyBad
	m.Merge(populated) // s.n == 0 but s.nonfinite > 0
	if m.N() != 1 || m.Nonfinite() != 2 || m.Mean() != 1 {
		t.Errorf("merge populated into all-nonfinite: %+v", m.Summary())
	}
	a, b := populated, populated
	a.Merge(b)
	if a.N() != 2 || a.Nonfinite() != 2 || a.Mean() != 1 {
		t.Errorf("populated merge: %+v", a.Summary())
	}
}
