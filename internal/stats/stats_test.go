package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if !almost(s.Var, 32.0/7.0, 1e-12) {
		t.Fatalf("Var = %v", s.Var)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary should be zero")
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.CI95() != 0 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("Median = %v", m)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 1
	}
	f := LinearFit(xs, ys)
	if !almost(f.Slope, 2.5, 1e-12) || !almost(f.Intercept, -1, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestPowerLawFit(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, -0.5)
	}
	k, c, r2 := PowerLawFit(xs, ys)
	if !almost(k, -0.5, 1e-10) || !almost(c, 3, 1e-9) || !almost(r2, 1, 1e-10) {
		t.Fatalf("power fit k=%v c=%v r2=%v", k, c, r2)
	}
}

func TestMonotoneThreshold(t *testing.T) {
	// f(x) = x², crossing target 0.25 at x = 0.5.
	got := MonotoneThreshold(0, 1, 0.25, 40, func(x float64) float64 { return x * x })
	if !almost(got, 0.5, 1e-9) {
		t.Fatalf("threshold = %v, want 0.5", got)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0.1, 0.2, 0.9, 0.95, 2.0, -1.0}, 2, 0, 1)
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("shape wrong: %v %v", edges, counts)
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

// Property: mean lies within [min, max] and variance is non-negative.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Var >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LinearFit recovers any exact line through ≥2 distinct points.
func TestQuickLinearFitRecovers(t *testing.T) {
	f := func(a, b int8) bool {
		slope, icept := float64(a)/4, float64(b)/4
		xs := []float64{-2, 0, 1, 3, 7}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + icept
		}
		fit := LinearFit(xs, ys)
		return almost(fit.Slope, slope, 1e-9) && almost(fit.Intercept, icept, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1.5")
	tb.AddRow("betalonger", "2")
	tb.AddNote("n=%d", 2)
	out := tb.String()
	for _, want := range []string{"demo", "alpha", "betalonger", "note: n=2"} {
		if !contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	md := tb.Markdown()
	if !contains(md, "| alpha |") {
		t.Errorf("markdown missing row:\n%s", md)
	}
	csv := tb.CSV()
	if !contains(csv, "alpha,1.5") {
		t.Errorf("csv missing row:\n%s", csv)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestSummarizeNonfinite pins the skip-and-count contract: a NaN (or
// ±Inf) observation is counted in Nonfinite and otherwise excluded, no
// matter where in the slice it sits. The old code seeded Min/Max from
// xs[0], so a leading NaN poisoned every field while a mid-slice NaN
// silently vanished from Min/Max only.
func TestSummarizeNonfinite(t *testing.T) {
	nan := math.NaN()
	clean := Summarize([]float64{2, 4, 9})
	for name, xs := range map[string][]float64{
		"leading": {nan, 2, 4, 9},
		"middle":  {2, nan, 4, 9},
		"tail":    {2, 4, 9, nan},
	} {
		s := Summarize(xs)
		if s.Nonfinite != 1 || s.N != 3 {
			t.Fatalf("%s NaN: N=%d Nonfinite=%d, want 3/1", name, s.N, s.Nonfinite)
		}
		s.Nonfinite = clean.Nonfinite
		if s != clean {
			t.Errorf("%s NaN changed the finite moments: %+v vs %+v", name, s, clean)
		}
	}

	s := Summarize([]float64{1, math.Inf(1), 3, math.Inf(-1)})
	if s.N != 2 || s.Nonfinite != 2 || s.Min != 1 || s.Max != 3 || !almost(s.Mean, 2, 1e-12) {
		t.Errorf("±Inf handling: %+v", s)
	}

	if s := Summarize([]float64{nan, math.Inf(1)}); s.N != 0 || s.Nonfinite != 2 || s.Mean != 0 || s.Min != 0 {
		t.Errorf("all-nonfinite sample should have zero moments: %+v", s)
	}
}
