// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics with confidence intervals, quantiles,
// ordinary and log–log least squares (for extracting scaling exponents
// from finite-size sweeps), and monotone threshold location (for
// percolation critical-probability estimation).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments of a sample. N counts the finite
// observations the moments were computed over; Nonfinite counts the
// NaN/±Inf inputs that were skipped.
type Summary struct {
	N         int
	Mean      float64
	Var       float64 // unbiased sample variance
	Std       float64
	Min       float64
	Max       float64
	StdErr    float64 // standard error of the mean
	Nonfinite int     // NaN/±Inf observations skipped
}

// Summarize computes summary statistics of xs. An empty sample yields a
// zero Summary. Non-finite values are skipped and counted in Nonfinite
// — the same accounting the sweep engine applies to metric values — so
// the result does not depend on where in the slice a NaN sits. (The old
// behavior seeded Min/Max from xs[0]: a leading NaN poisoned every
// field while a mid-slice NaN silently vanished from Min/Max only.)
func Summarize(xs []float64) Summary {
	var s Summary
	sum := 0.0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			s.Nonfinite++
			continue
		}
		if s.N == 0 {
			s.Min, s.Max = x, x
		} else {
			if x < s.Min {
				s.Min = x
			}
			if x > s.Max {
				s.Max = x
			}
		}
		s.N++
		sum += x
	}
	if s.N == 0 {
		return s
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Var)
		s.StdErr = s.Std / math.Sqrt(float64(s.N))
	}
	return s
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s Summary) CI95() float64 { return 1.96 * s.StdErr }

// String renders the summary as "mean ± ci95 (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95(), s.N)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if q <= 0 {
		return ys[0]
	}
	if q >= 1 {
		return ys[len(ys)-1]
	}
	pos := q * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(ys) {
		return ys[len(ys)-1]
	}
	return ys[lo]*(1-frac) + ys[lo+1]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Fit holds a least-squares line y = Slope·x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit computes the ordinary least-squares line through (xs, ys).
// It panics if the slices differ in length or have fewer than two points.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: LinearFit length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		panic("stats: LinearFit needs at least 2 points")
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{Slope: math.NaN(), Intercept: math.NaN(), R2: 0}
	}
	f := Fit{}
	f.Slope = (n*sxy - sx*sy) / den
	f.Intercept = (sy - f.Slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot <= 0 {
		f.R2 = 1
		return f
	}
	var ssRes float64
	for i := range xs {
		r := ys[i] - (f.Slope*xs[i] + f.Intercept)
		ssRes += r * r
	}
	f.R2 = 1 - ssRes/ssTot
	return f
}

// PowerLawFit fits y = C·x^k by least squares in log–log space and
// returns (k, C, R²). All inputs must be strictly positive.
func PowerLawFit(xs, ys []float64) (exponent, coeff, r2 float64) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: PowerLawFit needs positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	f := LinearFit(lx, ly)
	return f.Slope, math.Exp(f.Intercept), f.R2
}

// MonotoneThreshold locates the crossing point of a noisy monotone
// function f: [lo, hi] → ℝ against target by bisection, assuming f is
// (statistically) increasing. iters bisection steps are performed; the
// returned value is the midpoint of the final bracket.
//
// This is the workhorse of critical-probability estimation: f(p) is a
// Monte-Carlo mean of γ(G^(p)) and the threshold is where it crosses a
// small constant.
func MonotoneThreshold(lo, hi, target float64, iters int, f func(x float64) float64) float64 {
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if f(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Histogram counts xs into nbins equal-width bins over [min,max] and
// returns the bin edges (nbins+1 values) and counts (nbins values).
func Histogram(xs []float64, nbins int, min, max float64) (edges []float64, counts []int) {
	if nbins <= 0 || max <= min {
		panic("stats: bad Histogram parameters")
	}
	edges = make([]float64, nbins+1)
	for i := range edges {
		edges[i] = min + (max-min)*float64(i)/float64(nbins)
	}
	counts = make([]int, nbins)
	w := (max - min) / float64(nbins)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		b := int((x - min) / w)
		if b == nbins {
			b--
		}
		counts[b]++
	}
	return edges, counts
}
