package faultexp_test

// Golden test keeping README's Measures table in lockstep with the live
// measure registry: a measure registered without a README row (or a
// README row for a measure that no longer exists) fails here.

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"faultexp"
)

// readmeMeasures extracts the backticked measure names from the
// marker-delimited Measures table in README.md.
func readmeMeasures(t *testing.T) []string {
	t.Helper()
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	begin := strings.Index(s, "<!-- measures:begin")
	end := strings.Index(s, "<!-- measures:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("README.md is missing the measures:begin/measures:end markers")
	}
	section := s[begin:end]
	rowName := regexp.MustCompile("(?m)^\\| `([a-z0-9]+)`")
	var out []string
	for _, m := range rowName.FindAllStringSubmatch(section, -1) {
		out = append(out, m[1])
	}
	sort.Strings(out)
	return out
}

func TestREADMEMeasuresInSync(t *testing.T) {
	want := faultexp.SweepMeasures() // sorted by contract
	got := readmeMeasures(t)
	inREADME := map[string]bool{}
	for _, m := range got {
		inREADME[m] = true
	}
	registered := map[string]bool{}
	for _, m := range want {
		registered[m] = true
		if !inREADME[m] {
			t.Errorf("measure %q registered but missing from README's Measures table", m)
		}
	}
	for _, m := range got {
		if !registered[m] {
			t.Errorf("README lists measure %q which is not registered", m)
		}
	}
	if len(want) < 17 {
		t.Errorf("%d measures registered, want ≥ 17", len(want))
	}
}

// readmeFamilies extracts (name, size token, k cell) from the
// marker-delimited families table in README.md.
func readmeFamilies(t *testing.T) map[string][2]string {
	t.Helper()
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	begin := strings.Index(s, "<!-- families:begin")
	end := strings.Index(s, "<!-- families:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("README.md is missing the families:begin/families:end markers")
	}
	section := s[begin:end]
	row := regexp.MustCompile("(?m)^\\| `([a-z0-9]+)`\\s*\\| `([^`]+)`\\s*\\| ([^|]*)\\|")
	out := map[string][2]string{}
	for _, m := range row.FindAllStringSubmatch(section, -1) {
		out[m[1]] = [2]string{m[2], strings.TrimSpace(m[3])}
	}
	return out
}

// TestREADMEFamiliesInSync keeps README's families table in lockstep
// with the live gen registry (the same mechanism as the measures
// table): every registered family appears with its exact size-token
// syntax and a k cell consistent with its KUse, and no stale rows
// survive.
func TestREADMEFamiliesInSync(t *testing.T) {
	rows := readmeFamilies(t)
	registered := map[string]bool{}
	for _, f := range faultexp.GraphFamilies() {
		registered[f.Name()] = true
		row, ok := rows[f.Name()]
		if !ok {
			t.Errorf("family %q registered but missing from README's families table", f.Name())
			continue
		}
		if row[0] != f.SizeSyntax() {
			t.Errorf("family %q: README size token %q, registry says %q", f.Name(), row[0], f.SizeSyntax())
		}
		if hasK := f.KUse() != ""; hasK == (row[1] == "—") {
			t.Errorf("family %q: README k cell %q inconsistent with KUse %q", f.Name(), row[1], f.KUse())
		}
	}
	for name := range rows {
		if !registered[name] {
			t.Errorf("README lists family %q which is not registered", name)
		}
	}
	if len(registered) < 17 {
		t.Errorf("%d families registered, want ≥ 17", len(registered))
	}
}

// TestREADMEAggDimsInSync keeps README's agg grouping-dimension list in
// lockstep with the live sweep.AggDims (the same marker mechanism as
// the measures and families tables).
func TestREADMEAggDimsInSync(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	begin := strings.Index(s, "<!-- aggdims:begin")
	end := strings.Index(s, "<!-- aggdims:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("README.md is missing the aggdims:begin/aggdims:end markers")
	}
	section := s[begin:end]
	var got []string
	for _, m := range regexp.MustCompile("`([a-z]+)`").FindAllStringSubmatch(section, -1) {
		got = append(got, m[1])
	}
	want := faultexp.SweepAggDims()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("README agg dims %v, registry says %v", got, want)
	}
}

// TestREADMEDocumentsTrialStatsAndSubcommands pins the PR-4 surfaces
// the README promises: the per-trial companion suffixes, the resume and
// dry-run flags, and the agg subcommand with its summary columns.
func TestREADMEDocumentsTrialStatsAndSubcommands(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	for _, want := range []string{
		"`_mean`", "`_std`", "`_min`", "`_max`", // companion suffixes
		"-resume", "-dry-run", "faultexp agg", "-by",
		"`median`", "`nonfinite`",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("README does not document %s", want)
		}
	}
}

// TestREADMEModelsListed checks the fault-model names appear in README
// (prose, not a table — just presence).
func TestREADMEModelsListed(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	for _, m := range faultexp.SweepFaultModels() {
		if !strings.Contains(string(b), "`"+m+"`") {
			t.Errorf("README does not mention fault model `%s`", m)
		}
	}
}

// TestREADMEDocumentsJobAPI pins the Job API section: the exported
// surface it demonstrates must exist by name, and the contract language
// (lock-free snapshots, cell-boundary drain, resumable prefix) must be
// present.
func TestREADMEDocumentsJobAPI(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	for _, want := range []string{
		"### The Job API",
		"NewSweepJob", "SweepJobWriter", "SweepJobWorkers",
		"job.Start(ctx)", "job.Snapshot()", "job.Cancel()", "job.Wait()",
		"cell boundary", "lock-free",
		"resumable at cell", "SIGINT",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("README's Job API docs do not mention %q", want)
		}
	}
	// The deprecations the Job API supersedes are called out.
	for _, want := range []string{"RunSweep", "deprecated"} {
		if !strings.Contains(s, want) {
			t.Errorf("README does not document the %s deprecation", want)
		}
	}
}

// serveEndpoints is the canonical HTTP surface of `faultexp serve`
// (mirrored by cmd/faultexp/serve.go's mux registrations and its
// tests); README's table must list exactly these.
var serveEndpoints = []string{
	"POST /v1/jobs",
	"GET /v1/jobs",
	"GET /v1/jobs/{id}",
	"GET /v1/jobs/{id}/results",
	"DELETE /v1/jobs/{id}",
	"GET /healthz",
}

// TestREADMEDocumentsServeHTTPAPI keeps README's HTTP API table in
// lockstep with the daemon's route list (the same marker mechanism as
// the measures/families tables).
func TestREADMEDocumentsServeHTTPAPI(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	begin := strings.Index(s, "<!-- httpapi:begin")
	end := strings.Index(s, "<!-- httpapi:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("README.md is missing the httpapi:begin/httpapi:end markers")
	}
	section := s[begin:end]
	var got []string
	for _, m := range regexp.MustCompile("`((?:POST|GET|DELETE) [^`]+)`").FindAllStringSubmatch(section, -1) {
		got = append(got, m[1])
	}
	if strings.Join(got, "\n") != strings.Join(serveEndpoints, "\n") {
		t.Errorf("README HTTP API table lists:\n%v\nwant exactly:\n%v", got, serveEndpoints)
	}
	for _, want := range []string{"?from=", "faultexp serve", "-max-active", "-max-jobs", "byte-identical"} {
		if !strings.Contains(section, want) && !strings.Contains(s, want) {
			t.Errorf("README serve docs do not mention %q", want)
		}
	}
}

// TestREADMECoupledMeasuresInSync keeps README's coupled-capable
// measure list in lockstep with the live coupled registry (the same
// marker mechanism as the measures/families tables).
func TestREADMECoupledMeasuresInSync(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	begin := strings.Index(s, "<!-- coupledmeasures:begin")
	end := strings.Index(s, "<!-- coupledmeasures:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("README.md is missing the coupledmeasures:begin/coupledmeasures:end markers")
	}
	section := s[begin:end]
	var got []string
	for _, m := range regexp.MustCompile("`([a-z0-9]+)`").FindAllStringSubmatch(section, -1) {
		got = append(got, m[1])
	}
	sort.Strings(got)
	want := faultexp.SweepCoupledMeasures() // sorted by contract
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("README coupled measures %v, registry says %v", got, want)
	}
	if len(want) < 3 {
		t.Errorf("%d coupled measures registered, want ≥ 3", len(want))
	}
}

// TestREADMEDocumentsRateModeAndKernelScratch pins the PR-6 surfaces
// the README promises: the rate_mode spec field and flag with both
// tokens, the kernel-scratch ownership story with its CI gate, the
// serve retention cap, and the agg median exact/approximate split.
func TestREADMEDocumentsRateModeAndKernelScratch(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	for _, want := range []string{
		"### Coupled rate sweeps",
		`"rate_mode": "` + faultexp.SweepRateModeCoupled + `"`,
		`"rate_mode": "` + faultexp.SweepRateModeIndependent + `"`,
		"-rate-mode",
		"monotone in r",
		"`cuts.Workspace`", "`span.Workspace`",
		"alloc regression gate",
		"-max-result-bytes",
		"exact for groups of up to 64",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("README does not document %q", want)
		}
	}
}

// TestREADMEDocumentsParallelismModel pins the trial-parallel surfaces
// the README promises: the section itself, the spec fields and flags,
// the block-merge determinism contract with its last-ulp caveat, the
// lazy ref-counted graph lifecycle counters, and the cost-aware
// dispatch story with its dry-run column.
func TestREADMEDocumentsParallelismModel(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	for _, want := range []string{
		"### Parallelism model",
		`"trial_parallel": true`, "-trial-parallel",
		`"trial_block"`, "-trial-block",
		"block-index",
		"last\n  ulp",
		"SweepTrialMeasures",
		"ref-counted",
		"`graphs_built` / `graphs_total`",
		"largest\nfirst",
		"cost~", "SweepUnitCost",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("README's parallelism docs do not mention %q", want)
		}
	}
	// The documented default must be the real one.
	if faultexp.SweepDefaultTrialBlock != 64 {
		t.Errorf("README documents a default trial block of 64, code says %d", faultexp.SweepDefaultTrialBlock)
	}
}

// TestREADMESampledMeasuresInSync keeps README's sampled-capable
// measure list in lockstep with the live sampled registry (the same
// marker mechanism as the coupled-measures list).
func TestREADMESampledMeasuresInSync(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	begin := strings.Index(s, "<!-- sampledmeasures:begin")
	end := strings.Index(s, "<!-- sampledmeasures:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("README.md is missing the sampledmeasures:begin/sampledmeasures:end markers")
	}
	section := s[begin:end]
	var got []string
	for _, m := range regexp.MustCompile("`([a-z0-9]+)`").FindAllStringSubmatch(section, -1) {
		got = append(got, m[1])
	}
	sort.Strings(got)
	want := faultexp.SweepSampledMeasures() // sorted by contract
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("README sampled measures %v, registry says %v", got, want)
	}
	if len(want) < 4 {
		t.Errorf("%d sampled measures registered, want ≥ 4", len(want))
	}
}

// TestREADMEDocumentsPrecision pins the precision-tier surfaces the
// README promises: the spec field and flag with both tokens, the
// error-bar metrics, the raised sampled-tier size caps, the coupled
// refusal, and the dry-run memory table.
func TestREADMEDocumentsPrecision(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	for _, want := range []string{
		"### Precision tiers",
		`"precision": "sampled:k"`,
		`"` + faultexp.SweepPrecisionExact + `"`,
		"-precision",
		"diameter_lb",
		"residual",
		"stretch_max",
		"gen.MaxVerticesSampled",
		"gen.MaxEdgesSampled",
		"does not compose with sampling",
		"peak build memory",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("README does not document %q", want)
		}
	}
}

// TestREADMEDocumentsResultCache pins the "Result cache" section: the
// flag, the key-derivation and invalidation story, the integrity and
// single-flight semantics, the on-disk layout, the snapshot counters,
// and the exported library surface must all stay documented.
func TestREADMEDocumentsResultCache(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	for _, want := range []string{
		"### Result cache (`-cache`)",
		"content-addressed",
		"SHA-256",
		"kernel-version",
		"Invalidation",
		"orphans every old entry",
		"all-or-nothing",
		"Error records are never cached",
		"CRC-32C",
		"temp file",
		"`rename`",
		"byte-identical",
		"DIR/<hex[0:2]>/<hex[2:]>",
		"Single-flight",
		"`cache_hits`",
		"`cache_misses`",
		"`cache_inflight`",
		"cells cached",
		"OpenResultCache",
		"SweepWithCache",
		"SweepWithFlight",
		"SweepCellCacheKey",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("README's result-cache docs do not mention %q", want)
		}
	}
	// The documented kernel-version stamp export exists and is non-empty.
	if faultexp.SweepKernelVersion == "" {
		t.Error("SweepKernelVersion is empty")
	}
}

// TestREADMEDocumentsDistributedSweeps pins the distributed-fabric
// section: worker and coordinator invocations with their flags, the
// worker protocol, the durable-store layout, the failure semantics,
// and the kernel-skew discipline must all stay documented.
func TestREADMEDocumentsDistributedSweeps(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	s := string(b)
	for _, want := range []string{
		"### Distributed sweeps: `faultexp worker` + `faultexp coordinator`",
		"faultexp worker -addr",
		"faultexp coordinator -addr",
		"-workers", "-store",
		"-shards", "-max-inflight", "-health-interval", "-retry-delay",
		// The worker protocol.
		"`?shard=i/m`", "`?skip=K`",
		// The durable-store layout, path by path.
		"meta.json", "spec.json", "shard-<i>-of-<m>.jsonl", "cancelled",
		"temp dir + rename",
		// Failure semantics.
		"reassigned to surviving",
		"never recomputation of verified cells",
		"torn final line",
		"no duplicated or missing cells",
		"cancels durably",
		"faultexp merge -dir",
		// Kernel-skew discipline.
		"kernel-version stamp",
		"refuses to\ndispatch",
		"SweepKernelVersion",
		"GET /v1/workers",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("README's distributed-sweeps docs do not mention %q", want)
		}
	}
	// The byte-identity promise is made explicitly for the fleet path.
	if !strings.Contains(s, "byte-identical to a single-node `faultexp sweep`") {
		t.Error("README does not promise fleet/single-node byte identity")
	}
}
