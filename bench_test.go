package faultexp_test

// The benchmark harness of deliverable (d): one benchmark per
// reproduction experiment (the paper has no numbered tables/figures —
// each theorem/claim maps to an experiment, see DESIGN.md §2). Each
// benchmark regenerates the experiment's result tables in quick mode;
// run with
//
//	go test -bench=Experiment -benchmem
//
// and print the tables with
//
//	go run ./cmd/faultexp experiment all [-full]
//
// Additional micro-benchmarks cover the primitives each experiment
// leans on (expansion estimation, pruning, span, percolation sweeps).

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"faultexp"
	"faultexp/internal/experiments"
	"faultexp/internal/gen"
	"faultexp/internal/graph"
	"faultexp/internal/harness"
	"faultexp/internal/sweep"
	"faultexp/internal/xrand"
)

func benchExperiment(b *testing.B, id string) {
	reg := experiments.Registry()
	exp, ok := reg.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := harness.Config{Quick: true, Seed: uint64(20040627 + i)}
		rep := exp.Run(cfg)
		if rep == nil || len(rep.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// One benchmark per experiment (E1–E12).

func BenchmarkExperimentE1(b *testing.B)  { benchExperiment(b, "E1") }  // Theorem 2.1
func BenchmarkExperimentE2(b *testing.B)  { benchExperiment(b, "E2") }  // Claim 2.4
func BenchmarkExperimentE3(b *testing.B)  { benchExperiment(b, "E3") }  // Theorem 2.3
func BenchmarkExperimentE4(b *testing.B)  { benchExperiment(b, "E4") }  // Theorem 2.5
func BenchmarkExperimentE5(b *testing.B)  { benchExperiment(b, "E5") }  // Theorem 3.1
func BenchmarkExperimentE6(b *testing.B)  { benchExperiment(b, "E6") }  // Theorem 3.4
func BenchmarkExperimentE7(b *testing.B)  { benchExperiment(b, "E7") }  // Theorem 3.6 + Lemma 3.7
func BenchmarkExperimentE8(b *testing.B)  { benchExperiment(b, "E8") }  // §1.1 survey
func BenchmarkExperimentE9(b *testing.B)  { benchExperiment(b, "E9") }  // §4 dilation
func BenchmarkExperimentE10(b *testing.B) { benchExperiment(b, "E10") } // span predictor
func BenchmarkExperimentE11(b *testing.B) { benchExperiment(b, "E11") } // Upfal baseline
func BenchmarkExperimentE12(b *testing.B) { benchExperiment(b, "E12") } // Claim 3.2

// Extension experiments (see DESIGN.md §2).

func BenchmarkExperimentE13(b *testing.B) { benchExperiment(b, "E13") } // §1.3 load balancing
func BenchmarkExperimentE14(b *testing.B) { benchExperiment(b, "E14") } // Leighton–Maggs baseline
func BenchmarkExperimentE15(b *testing.B) { benchExperiment(b, "E15") } // cut-finder ablation
func BenchmarkExperimentE16(b *testing.B) { benchExperiment(b, "E16") } // diameter vs expansion
func BenchmarkExperimentE17(b *testing.B) { benchExperiment(b, "E17") } // a.e. agreement
func BenchmarkExperimentE18(b *testing.B) { benchExperiment(b, "E18") } // routing congestion
func BenchmarkExperimentE19(b *testing.B) { benchExperiment(b, "E19") } // open span conjecture

// Sweep trial hot path: one cell with many trials through the real
// engine (registry lookup, fault injection, measurement, streaming),
// discarding the output. allocs/op here is the number the Workspace
// refactor is accountable to — see BENCH_sweep.json for the recorded
// trajectory.

type discardWriter struct{}

func (discardWriter) Write(*sweep.Result) error { return nil }
func (discardWriter) Flush() error              { return nil }

func benchSweepCell(b *testing.B, measure, model string, rate float64) {
	spec := &sweep.Spec{
		Families: []sweep.FamilySpec{{Family: "torus", Size: "16x16"}},
		Measures: []string{measure},
		Model:    model,
		Rates:    []float64{rate},
		Trials:   32,
		Seed:     7,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := sweep.Run(spec, discardWriter{}, sweep.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Errors != 0 {
			b.Fatalf("%d cells errored", sum.Errors)
		}
	}
}

func BenchmarkSweepTrialGamma(b *testing.B) { benchSweepCell(b, "gamma", sweep.ModelIIDNode, 0.05) }
func BenchmarkSweepTrialGammaEdge(b *testing.B) {
	benchSweepCell(b, "gamma", sweep.ModelIIDEdge, 0.05)
}
func BenchmarkSweepTrialPrune(b *testing.B)  { benchSweepCell(b, "prune", sweep.ModelIIDNode, 0.02) }
func BenchmarkSweepTrialPrune2(b *testing.B) { benchSweepCell(b, "prune2", sweep.ModelIIDNode, 0.02) }
func BenchmarkSweepTrialSpan(b *testing.B)   { benchSweepCell(b, "span", sweep.ModelIIDNode, 0.05) }
func BenchmarkSweepTrialShatter(b *testing.B) {
	benchSweepCell(b, "shatter", sweep.ModelIIDNode, 0.05)
}

// Sampled-precision cell: the same engine path with the "sampled:k"
// tier selected, so the k-sweep frontier-BFS diameter kernel (instead
// of all-pairs BFS) is what the cell pays for.
func BenchmarkSweepTrialDiameterSampled(b *testing.B) {
	spec := &sweep.Spec{
		Families:  []sweep.FamilySpec{{Family: "torus", Size: "64x64"}},
		Measures:  []string{"diameter"},
		Model:     sweep.ModelIIDNode,
		Rates:     []float64{0.05},
		Trials:    32,
		Seed:      7,
		Precision: "sampled:4",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := sweep.Run(spec, discardWriter{}, sweep.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Errors != 0 {
			b.Fatalf("%d cells errored", sum.Errors)
		}
	}
}

// Bare trial path: one op = ONE trial through the trial-grained layer
// (setup amortized away), with a warm workspace and recorder — the
// number the "steady-state trial path ≈ 0 allocs/op" acceptance
// criterion is measured on. The cell-level BenchmarkSweepTrial* above
// include per-cell setup (spec expansion, registry, baselines); these
// isolate what a sweep pays per additional -trials.

func benchTrialPath(b *testing.B, measure, model string, rate float64) {
	setup, ok := sweep.LookupTrials(measure)
	if !ok {
		b.Fatalf("measure %s is not trial-grained", measure)
	}
	spec := &sweep.Spec{
		Families: []sweep.FamilySpec{{Family: "torus", Size: "16x16"}},
		Measures: []string{measure},
		Model:    model,
		Rates:    []float64{rate},
		Trials:   1,
		Seed:     7,
	}
	c := spec.Cells()[0]
	g, _, err := gen.FromFamily("torus", "16x16", 0, xrand.New(sweep.GraphSeed(spec.Seed, c.Family)))
	if err != nil {
		b.Fatal(err)
	}
	ws := graph.NewWorkspace()
	rec := sweep.NewRecorder()
	run, err := setup(g, c, ws, xrand.New(c.Seed), rec)
	if err != nil {
		b.Fatal(err)
	}
	// Warm pass: grow workspace buffers and recorder slots.
	if err := sweep.RunTrials(c, ws, rec, run.Trial); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sweep.RunTrials(c, ws, rec, run.Trial); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrialPathGamma(b *testing.B) { benchTrialPath(b, "gamma", sweep.ModelIIDNode, 0.05) }
func BenchmarkTrialPathGammaEdge(b *testing.B) {
	benchTrialPath(b, "gamma", sweep.ModelIIDEdge, 0.05)
}
func BenchmarkTrialPathShatter(b *testing.B) {
	benchTrialPath(b, "shatter", sweep.ModelIIDNode, 0.05)
}
func BenchmarkTrialPathPrune(b *testing.B)  { benchTrialPath(b, "prune", sweep.ModelIIDNode, 0.02) }
func BenchmarkTrialPathPrune2(b *testing.B) { benchTrialPath(b, "prune2", sweep.ModelIIDNode, 0.02) }
func BenchmarkTrialPathPercolation(b *testing.B) {
	benchTrialPath(b, "percolation", sweep.ModelIIDNode, 0.05)
}
func BenchmarkTrialPathSpan(b *testing.B) { benchTrialPath(b, "span", sweep.ModelIIDNode, 0.05) }

// BenchmarkTrialPathGammaBlocks is the blocked (trial-parallel) form of
// the bare trial path: the same 64 trials driven through RunTrialsRange
// in 16-trial blocks — what one worker pays per block under
// -trial-parallel. The alloc gate holds it to the same 0 allocs/op as
// the whole-loop path: blocking must not reintroduce per-trial
// allocation.
func BenchmarkTrialPathGammaBlocks(b *testing.B) {
	setup, ok := sweep.LookupTrials("gamma")
	if !ok {
		b.Fatal("gamma is not trial-grained")
	}
	spec := &sweep.Spec{
		Families: []sweep.FamilySpec{{Family: "torus", Size: "16x16"}},
		Measures: []string{"gamma"},
		Model:    sweep.ModelIIDNode,
		Rates:    []float64{0.05},
		Trials:   64,
		Seed:     7,
	}
	c := spec.Cells()[0]
	g, _, err := gen.FromFamily("torus", "16x16", 0, xrand.New(sweep.GraphSeed(spec.Seed, c.Family)))
	if err != nil {
		b.Fatal(err)
	}
	ws := graph.NewWorkspace()
	rec := sweep.NewRecorder()
	run, err := setup(g, c, ws, xrand.New(c.Seed), rec)
	if err != nil {
		b.Fatal(err)
	}
	const block = 16
	pass := func() {
		for lo := 0; lo < c.Trials; lo += block {
			hi := lo + block
			if hi > c.Trials {
				hi = c.Trials
			}
			if err := sweep.RunTrialsRange(c, ws, rec, run.Trial, lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	}
	pass() // warm workspace buffers and recorder slots
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pass()
	}
}

// BenchmarkJobWideCellParallel is the wide-cell scheduling scenario the
// trial-parallel mode exists for: ONE sampled cell whose trials are the
// only parallelism available. One op = a full trial-parallel job (graph
// build included) with block size 1, so every trial is its own
// schedulable unit. On a multi-core host this is the number that should
// scale with GOMAXPROCS; see BENCH_sweep.json for recorded runs.
func BenchmarkJobWideCellParallel(b *testing.B) {
	spec := &sweep.Spec{
		Families:      []sweep.FamilySpec{{Family: "torus", Size: "256x256"}},
		Measures:      []string{"diameter"},
		Model:         sweep.ModelIIDNode,
		Rates:         []float64{0.05},
		Trials:        8,
		Seed:          7,
		Precision:     "sampled:4",
		TrialParallel: true,
		TrialBlock:    1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := sweep.Run(spec, discardWriter{}, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Errors != 0 {
			b.Fatalf("%d cells errored", sum.Errors)
		}
	}
}

// Micro-benchmarks for the primitives.

func BenchmarkPrimitiveNodeExpansion(b *testing.B) {
	g := faultexp.Torus(16, 16)
	rng := faultexp.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = faultexp.NodeExpansion(g, rng.Split())
	}
}

func BenchmarkPrimitivePrune(b *testing.B) {
	g := faultexp.Torus(12, 12)
	rng := faultexp.NewRNG(2)
	pat := faultexp.AdversarialFaults(g, 6, rng.Split())
	faulty := pat.Apply(g)
	alpha, _ := faultexp.NodeExpansion(g, rng.Split())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = faultexp.Prune(faulty.G, alpha.NodeAlpha, 0.5, rng.Split())
	}
}

func BenchmarkPrimitivePrune2(b *testing.B) {
	g := faultexp.Torus(12, 12)
	rng := faultexp.NewRNG(3)
	pat := faultexp.RandomNodeFaults(g, 0.02, rng.Split())
	faulty := pat.Apply(g)
	alphaE, _ := faultexp.EdgeExpansion(g, rng.Split())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = faultexp.Prune2(faulty.G, alphaE.EdgeAlpha, 0.125, rng.Split())
	}
}

func BenchmarkPrimitiveSampledSpan(b *testing.B) {
	g := faultexp.Torus(12, 12)
	rng := faultexp.NewRNG(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = faultexp.SampledSpan(g, 20, rng.Split())
	}
}

func BenchmarkPrimitivePercolationSweep(b *testing.B) {
	g := faultexp.Torus(32, 32)
	rng := faultexp.NewRNG(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = faultexp.PercolationCurve(g, faultexp.Site, 2, rng.Split())
	}
}

func BenchmarkPrimitiveLambda2(b *testing.B) {
	g := faultexp.Torus(24, 24)
	rng := faultexp.NewRNG(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = faultexp.Lambda2(g, rng.Split())
	}
}

func BenchmarkPrimitiveEmulate(b *testing.B) {
	g := faultexp.Torus(12, 12)
	rng := faultexp.NewRNG(7)
	pat := faultexp.RandomNodeFaults(g, 0.05, rng.Split())
	core := pat.Apply(g).LargestComponentSub()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb, err := faultexp.Emulate(g, core)
		if err != nil {
			b.Fatal(err)
		}
		_ = emb.Evaluate()
	}
}

// --- Result-cache benchmarks (see README "Result cache") ---

// BenchmarkCacheKeyHash: one op = deriving one cell's content address
// with a reused hasher — the per-cell overhead every cached run pays up
// front for the whole grid. The acceptance gate is 0 allocs/op.
func BenchmarkCacheKeyHash(b *testing.B) {
	spec := &sweep.Spec{
		Families: []sweep.FamilySpec{{Family: "torus", Size: "16x16"}},
		Measures: []string{"gamma"},
		Model:    sweep.ModelIIDNode,
		Rates:    []float64{0.05},
		Trials:   32,
		Seed:     7,
	}
	c := spec.Cells()[0]
	var h faultexp.CacheHasher
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = faultexp.SweepCellCacheKey(&h, spec.RateMode, c)
	}
}

// cacheBenchSpec is the grid the hit/cold-path benchmarks run: real
// measures, enough cells that scheduling matters, small enough that one
// cold op is affordable.
func cacheBenchSpec() *sweep.Spec {
	return &sweep.Spec{
		Families: []sweep.FamilySpec{{Family: "torus", Size: "16x16"}, {Family: "hypercube", Size: "6"}},
		Measures: []string{"gamma", "shatter"},
		Model:    sweep.ModelIIDNode,
		Rates:    []float64{0, 0.05, 0.1},
		Trials:   32,
		Seed:     7,
	}
}

func runCacheBenchJob(b *testing.B, rc *faultexp.ResultCache) *sweep.Job {
	j, err := sweep.NewJob(cacheBenchSpec(), sweep.WithWriter(discardWriter{}), sweep.WithCache(rc))
	if err != nil {
		b.Fatal(err)
	}
	if err := j.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		b.Fatal(err)
	}
	return j
}

// BenchmarkJobCacheHitPath: one op = a fully-warm job over the 12-cell
// grid — cache probe, verification, and ordered emit, no graph builds,
// no trials. Compare against BenchmarkJobCacheColdPath for the speedup
// a warm cache buys (the PR's ≥10× acceptance criterion).
func BenchmarkJobCacheHitPath(b *testing.B) {
	rc, err := faultexp.OpenResultCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	runCacheBenchJob(b, rc) // cold fill
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := runCacheBenchJob(b, rc)
		if s := j.Snapshot(); s.CacheHits != int64(s.CellsTotal) {
			b.Fatalf("warm job: %d hits of %d cells", s.CacheHits, s.CellsTotal)
		}
	}
}

// BenchmarkJobCacheColdPath: the same grid with an always-empty cache —
// what the hit path saves. One op = a full cold run (graph builds +
// trials + write-back).
func BenchmarkJobCacheColdPath(b *testing.B) {
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rc, err := faultexp.OpenResultCache(filepath.Join(dir, fmt.Sprint(i)))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		j := runCacheBenchJob(b, rc)
		if s := j.Snapshot(); s.CacheMisses != int64(s.CellsTotal) {
			b.Fatalf("cold job: %d misses of %d cells", s.CacheMisses, s.CellsTotal)
		}
	}
}
