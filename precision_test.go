package faultexp_test

// End-to-end checks for the sampled-precision tier: a "sampled:k" grid
// must be exactly as deterministic as an exact one — byte-identical
// across worker counts, shard/merge, and resume — while its records
// carry the precision tag and the sampled kernels' error-bar metrics.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"faultexp"
)

func sampledSpec() *faultexp.SweepSpec {
	return &faultexp.SweepSpec{
		Families: []faultexp.SweepFamily{
			{Family: "torus", Size: "16x16"},
			{Family: "hypercube", Size: "7"},
		},
		Measures:  []string{"diameter", "lambda2", "dilation"},
		Models:    []string{"iid-node"},
		Rates:     []float64{0, 0.1},
		Trials:    3,
		Seed:      99,
		Precision: "sampled:3",
	}
}

// TestSampledPrecisionDeterminism runs the same sampled grid at several
// worker counts and as shards, requiring byte-identical JSONL, then
// resumes a truncated prefix and requires the completed file to match.
func TestSampledPrecisionDeterminism(t *testing.T) {
	spec := sampledSpec()
	var want bytes.Buffer
	if _, err := faultexp.RunSweep(spec, faultexp.NewSweepJSONL(&want), 1); err != nil {
		t.Fatalf("RunSweep(workers=1): %v", err)
	}
	for _, workers := range []int{2, 4} {
		var got bytes.Buffer
		if _, err := faultexp.RunSweep(sampledSpec(), faultexp.NewSweepJSONL(&got), workers); err != nil {
			t.Fatalf("RunSweep(workers=%d): %v", workers, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("workers=%d output differs from workers=1", workers)
		}
	}

	// Shard 0/2 + 1/2, merged, must reproduce the unsharded bytes.
	const m = 2
	shards := make([]bytes.Buffer, m)
	for i := 0; i < m; i++ {
		sh, err := faultexp.ParseSweepShard(fmt.Sprintf("%d/%d", i, m))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := faultexp.RunSweepOpt(sampledSpec(), faultexp.NewSweepJSONL(&shards[i]),
			faultexp.SweepOptions{Workers: 2, Shard: sh}); err != nil {
			t.Fatalf("RunSweepOpt(shard %d): %v", i, err)
		}
	}
	var merged bytes.Buffer
	if _, err := faultexp.MergeSweepShards(
		[]io.Reader{bytes.NewReader(shards[0].Bytes()), bytes.NewReader(shards[1].Bytes())},
		&merged, nil, spec); err != nil {
		t.Fatalf("MergeSweepShards: %v", err)
	}
	if !bytes.Equal(merged.Bytes(), want.Bytes()) {
		t.Errorf("merged sampled shards differ from unsharded run")
	}

	// Resume: keep the first 5 complete records, rerun the rest.
	lines := bytes.SplitAfter(want.Bytes(), []byte("\n"))
	prefix := bytes.Join(lines[:5], nil)
	st, err := faultexp.ScanSweepResume(bytes.NewReader(prefix), spec, faultexp.SweepShard{})
	if err != nil {
		t.Fatalf("ScanSweepResume: %v", err)
	}
	if st.Done != 5 {
		t.Fatalf("resume verified %d cells, want 5", st.Done)
	}
	var tail bytes.Buffer
	if _, err := faultexp.RunSweepOpt(sampledSpec(), faultexp.NewSweepJSONL(&tail),
		faultexp.SweepOptions{Workers: 3, SkipCells: st.Done}); err != nil {
		t.Fatalf("RunSweepOpt(resume): %v", err)
	}
	resumed := append(append([]byte(nil), prefix...), tail.Bytes()...)
	if !bytes.Equal(resumed, want.Bytes()) {
		t.Errorf("resumed sampled run differs from uninterrupted run")
	}
}

// TestSampledPrecisionRecords checks each record carries the precision
// tag and the sampled kernels' error-bar metrics.
func TestSampledPrecisionRecords(t *testing.T) {
	var out bytes.Buffer
	if _, err := faultexp.RunSweep(sampledSpec(), faultexp.NewSweepJSONL(&out), 2); err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	wantMetrics := map[string][]string{
		"diameter": {"diameter_lb_mean", "ecc_std", "measured_frac"},
		"lambda2":  {"lambda2_mean", "residual_mean", "iters_mean", "lambda2_0"},
		"dilation": {"stretch_max_mean", "stretch_std", "dil_per_log2n"},
	}
	for i, ln := range bytes.Split(bytes.TrimSpace(out.Bytes()), []byte("\n")) {
		if !bytes.Contains(ln, []byte(`"precision":"sampled:3"`)) {
			t.Fatalf("record %d lacks the precision tag: %s", i, ln)
		}
		var res faultexp.SweepResult
		if err := json.Unmarshal(ln, &res); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if res.Err != "" {
			t.Fatalf("record %d (%s) errored: %s", i, res.Measure, res.Err)
		}
		for _, metric := range wantMetrics[res.Measure] {
			if _, ok := res.Metrics[metric]; !ok {
				t.Errorf("record %d (%s) missing metric %q", i, res.Measure, metric)
			}
		}
	}

	// Exact runs must NOT carry the tag: the default tier's bytes are
	// frozen by the CLI goldens, and this guards the library path too.
	exact := sampledSpec()
	exact.Precision = ""
	exact.Measures = []string{"gamma"}
	var exactOut bytes.Buffer
	if _, err := faultexp.RunSweep(exact, faultexp.NewSweepJSONL(&exactOut), 1); err != nil {
		t.Fatalf("RunSweep(exact): %v", err)
	}
	if bytes.Contains(exactOut.Bytes(), []byte(`"precision"`)) {
		t.Errorf("exact run emitted a precision field")
	}
}

// TestSampledPrecisionValidation checks the spec-level refusals: coupled
// rate mode does not compose with sampling, non-sampled-capable measures
// are rejected, and malformed tokens fail to parse.
func TestSampledPrecisionValidation(t *testing.T) {
	base := func() *faultexp.SweepSpec {
		return &faultexp.SweepSpec{
			Families: []faultexp.SweepFamily{{Family: "torus", Size: "8x8"}},
			Measures: []string{"gamma"},
			Models:   []string{"iid-node"},
			Rates:    []float64{0.1},
			Trials:   1,
			Seed:     1,
		}
	}

	coupled := base()
	coupled.RateMode = faultexp.SweepRateModeCoupled
	coupled.Precision = "sampled:2"
	if err := coupled.Validate(); err == nil || !strings.Contains(err.Error(), "does not compose") {
		t.Errorf("coupled+sampled validated, err=%v", err)
	}

	exactCoupled := base()
	exactCoupled.Measures = []string{"percolation"}
	exactCoupled.RateMode = faultexp.SweepRateModeCoupled
	exactCoupled.Precision = faultexp.SweepPrecisionExact
	if err := exactCoupled.Validate(); err != nil {
		t.Errorf("coupled+exact refused: %v", err)
	}

	unsupported := base()
	unsupported.Measures = []string{"percolation"}
	unsupported.Precision = "sampled:2"
	if err := unsupported.Validate(); err == nil || !strings.Contains(err.Error(), "sampled-precision kernel") {
		t.Errorf("non-sampled-capable measure validated, err=%v", err)
	}

	for _, tok := range []string{"sampled", "sampled:0", "sampled:-1", "sampled:x", "approx:3"} {
		bad := base()
		bad.Precision = tok
		if err := bad.Validate(); err == nil {
			t.Errorf("precision %q validated", tok)
		}
	}

	sampled := faultexp.SweepSampledMeasures()
	if len(sampled) < 4 {
		t.Fatalf("SweepSampledMeasures() = %v, want ≥ 4 entries", sampled)
	}
	all := map[string]bool{}
	for _, m := range faultexp.SweepMeasures() {
		all[m] = true
	}
	for _, m := range sampled {
		if !all[m] {
			t.Errorf("sampled measure %q not in SweepMeasures", m)
		}
	}
}
