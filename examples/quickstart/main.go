// Quickstart: build a torus, break it with random faults, prune it back
// to health, and compare the survivor's expansion with the original —
// the library's core loop in ~40 lines.
package main

import (
	"fmt"

	"faultexp"
)

func main() {
	// A 16×16 torus: 256 nodes, 4-regular, edge expansion ≈ 4/16.
	g := faultexp.Torus(16, 16)
	rng := faultexp.NewRNG(42)

	alphaE, exact := faultexp.EdgeExpansion(g, rng.Split())
	fmt.Printf("fault-free: n=%d, αe=%.4f (exact=%v)\n", g.N(), alphaE.EdgeAlpha, exact)

	// Fail 3% of the nodes at random.
	pat := faultexp.RandomNodeFaults(g, 0.03, rng.Split())
	faulty := pat.Apply(g)
	fmt.Printf("faults: %d nodes failed, %d survive, largest component %.1f%%\n",
		pat.Count(), faulty.G.N(), 100*faulty.G.GammaLargest())

	// Prune2 (Figure 2 of the paper): carve away every region whose edge
	// expansion collapsed, keeping a certified-healthy survivor.
	eps := 0.125 // Theorem 3.4's 1/(2δ) for degree 4
	res := faultexp.Prune2(faulty.G, alphaE.EdgeAlpha, eps, rng.Split())
	fmt.Printf("prune2: survivor %d nodes (n/2=%d), culled %d in %d rounds\n",
		res.SurvivorSize(), g.N()/2, res.CulledTotal, res.Iterations)
	fmt.Printf("prune2: threshold αe·ε=%.4f, certified quotient %.4f\n",
		res.Threshold, res.CertifiedQuotient)

	// Measure what the theorems promise: the survivor's expansion is
	// within a constant factor of the original.
	nodeAlpha, edgeAlpha := faultexp.ResidualExpansion(res.H.G, rng.Split())
	fmt.Printf("survivor: α=%.4f αe=%.4f (vs fault-free αe=%.4f)\n",
		nodeAlpha, edgeAlpha, alphaE.EdgeAlpha)
}
