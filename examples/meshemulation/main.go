// Meshemulation: the §1.2 pipeline end-to-end. A faulty torus is pruned
// to a healthy core; the *ideal* torus is then embedded into that core
// (every node — alive or dead — remapped to its nearest surviving node,
// every ideal edge routed around the faults), and the embedding is
// scored by load, congestion and dilation. By Leighton–Maggs–Rao the
// core can emulate the ideal machine with slowdown O(ℓ+c+d); the paper's
// §4 predicts dilation O(α⁻¹ log n) for meshes of any dimension.
package main

import (
	"fmt"
	"math"

	"faultexp"
)

func main() {
	rng := faultexp.NewRNG(99)
	configs := []struct {
		name string
		g    *faultexp.Graph
	}{
		{"torus 2D 16x16", faultexp.Torus(16, 16)},
		{"torus 3D 6x6x6", faultexp.Torus(6, 6, 6)},
	}
	faultProbs := []float64{0.01, 0.05, 0.10}

	fmt.Println("emulating the ideal torus on its pruned faulty self (§1.2 + §4)")
	fmt.Printf("%-16s %-8s %-8s %-6s %-6s %-10s %-9s %-9s %s\n",
		"machine", "p", "faults", "core", "load", "congestion", "dilation", "slowdown", "dil/log2(n)")
	for _, cfg := range configs {
		n := cfg.g.N()
		alphaE, _ := faultexp.EdgeExpansion(cfg.g, rng.Split())
		eps := 1 / (2 * float64(cfg.g.MaxDegree()))
		for _, p := range faultProbs {
			pat := faultexp.RandomNodeFaults(cfg.g, p, rng.Split())
			faulty := pat.Apply(cfg.g)
			res := faultexp.Prune2(faulty.G, alphaE.EdgeAlpha, eps, rng.Split())
			core := res.H.LargestComponentSub()
			emb, err := faultexp.Emulate(cfg.g, core)
			if err != nil {
				fmt.Printf("%-16s %-8.2f embedding failed: %v\n", cfg.name, p, err)
				continue
			}
			m := emb.Evaluate()
			fmt.Printf("%-16s %-8.2f %-8d %-6d %-6d %-10d %-9d %-9d %.2f\n",
				cfg.name, p, pat.Count(), core.G.N(), m.Load, m.Congestion,
				m.Dilation, m.Slowdown, float64(m.Dilation)/math.Log2(float64(n)))
		}
	}
	fmt.Println("\nreading: dilation stays a small multiple of log n in both dimensions —")
	fmt.Println("the generalization beyond d=2 that the paper's span machinery buys.")
}
