// Loadbalance: the §1.3 application that motivates the whole paper. If a
// faulty network still contains a large component with (almost) the
// original expansion, then simple local load-balancing still works at
// (almost) the original speed — and pruning is what finds that
// component. This example drops a point load on one node and counts
// diffusion rounds until the load is nearly uniform, on: the fault-free
// torus, the raw faulty torus (bottlenecks included), the pruned
// survivor, and a same-size bottleneck graph for contrast.
package main

import (
	"fmt"

	"faultexp"
)

func main() {
	rng := faultexp.NewRNG(2004)
	m := 12
	g := faultexp.Torus(m, m)
	n := g.N()
	const tol = 0.05
	const maxRounds = 500000

	rounds := func(h *faultexp.Graph) int {
		load := make([]float64, h.N())
		load[0] = float64(h.N())
		return faultexp.RoundsToBalance(h, load, tol, maxRounds)
	}

	ideal := rounds(g)
	fmt.Printf("%-28s n=%-4d rounds=%d\n", "torus (fault-free)", n, ideal)

	// Faulty torus: keep the largest component as-is (no pruning).
	alphaE, _ := faultexp.EdgeExpansion(g, rng.Split())
	pat := faultexp.RandomNodeFaults(g, 0.05, rng.Split())
	faulty := pat.Apply(g).LargestComponentSub()
	fmt.Printf("%-28s n=%-4d rounds=%d\n", "faulty, unpruned component",
		faulty.G.N(), rounds(faulty.G))

	// Pruned survivor: Prune2 carves away the degraded fringe.
	res := faultexp.Prune2(faulty.G, alphaE.EdgeAlpha, 0.1, rng.Split())
	survivor := res.H.LargestComponentSub().G
	fmt.Printf("%-28s n=%-4d rounds=%d\n", "faulty, pruned survivor",
		survivor.N(), rounds(survivor))

	// Contrast: a bottleneck network of the same size.
	barbell := barbellGraph(n / 2)
	fmt.Printf("%-28s n=%-4d rounds=%d\n", "barbell (bottleneck)", barbell.N(), rounds(barbell))

	fmt.Println("\nreading: the pruned survivor balances load within a small factor of the")
	fmt.Println("fault-free machine, while the bottleneck graph is orders of magnitude")
	fmt.Println("slower — expansion, preserved by pruning, is what buys balancing speed.")
}

// barbellGraph builds two k-cliques joined by one edge via the public
// builder API.
func barbellGraph(k int) *faultexp.Graph {
	b := faultexp.NewBuilder(2 * k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(u, v)
			b.AddEdge(k+u, k+v)
		}
	}
	b.AddEdge(k-1, k)
	return b.Build()
}
