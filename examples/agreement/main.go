// Agreement: almost-everywhere agreement under Byzantine faults — the
// §1.3 primitive that motivates keeping expansion through faults. Honest
// nodes start with a random bit (65% majority) and run synchronous
// iterated majority; Byzantine nodes report the minority to everyone.
// On an expander the honest majority sweeps the network except O(t)
// nodes; on the chain-replaced graph (same Byzantine fraction, placed at
// chain centers) opinions freeze into local stripes and global agreement
// never forms.
package main

import (
	"fmt"

	"faultexp"
)

func main() {
	rng := faultexp.NewRNG(4)
	rounds := []int{0, 2, 5, 10, 20, 40}

	run := func(name string, g *faultexp.Graph, byz []int, rngRun *faultexp.RNG) {
		inst := faultexp.NewAgreement(g, byz, 0.65, rngRun)
		fmt.Printf("%-24s n=%-5d byz=%-4d |", name, g.N(), len(byz))
		done := 0
		for _, r := range rounds {
			inst.Run(r - done)
			done = r
			fmt.Printf(" r%-3d %.3f |", r, inst.AgreementFraction())
		}
		fmt.Println()
	}

	// Expander with 5% random Byzantine nodes.
	exp := faultexp.Expander(16) // 256 nodes
	byzExp := rng.SampleK(exp.N(), exp.N()/20)
	run("expander", exp, byzExp, rng.Split())

	// Chain-replaced expander, Byzantine at the chain centers (the
	// Theorem 2.3/3.1 pressure points).
	cg := faultexp.ChainReplace(faultexp.Expander(5), 10)
	centers := cg.CenterSet()
	budget := cg.G.N() / 20
	if budget > len(centers) {
		budget = len(centers)
	}
	byzChain := make([]int, budget)
	for i, j := range rng.SampleK(len(centers), budget) {
		byzChain[i] = centers[j]
	}
	run("chain graph (centers)", cg.G, byzChain, rng.Split())

	fmt.Println("\nreading: the expander's honest majority wins almost everywhere within a")
	fmt.Println("handful of rounds; the chain graph's opinions freeze into stripes that no")
	fmt.Println("amount of extra rounds can merge — agreement needs expansion, which is")
	fmt.Println("exactly what pruning preserves after faults.")
}
