// CAN churn: the paper's §4 observes that a CAN peer-to-peer overlay
// behaves like a d-dimensional torus, so its tolerance to member churn
// follows the span results — tolerable fault probability inversely
// polynomial in d, with expansion degrading by at most a factor of d.
//
// This example sweeps churn rates across overlay dimensions and reports
// when the overlay keeps a large well-expanding core (found by Prune2),
// alongside the Theorem 3.4 prediction 1/(2e·δ⁴σ) with σ = 2.
package main

import (
	"fmt"

	"faultexp"
)

func main() {
	rng := faultexp.NewRNG(7)
	// Overlays of ~240–260 peers in d = 2, 3, 4.
	configs := []struct {
		dim, side int
	}{
		{2, 16}, // 256 peers, degree 4
		{3, 6},  // 216 peers, degree 6
		{4, 4},  // 256 peers, degree 8
	}
	churns := []float64{0.001, 0.01, 0.05, 0.10, 0.20}

	fmt.Println("CAN overlay churn tolerance (core = Prune2 survivor ≥ n/2 with certified expansion)")
	fmt.Printf("%-10s %-7s %-9s %-12s", "overlay", "peers", "degree", "thm3.4 p*")
	for _, c := range churns {
		fmt.Printf("  churn=%-5.3f", c)
	}
	fmt.Println()

	for _, cfgEntry := range configs {
		g := faultexp.CAN(cfgEntry.dim, cfgEntry.side)
		delta := g.MaxDegree()
		pStar := faultexp.SpanFaultTolerance(delta, 2) // σ = 2 for meshes (Theorem 3.6)
		alphaE, _ := faultexp.EdgeExpansion(g, rng.Split())
		eps := 1 / (2 * float64(delta))
		fmt.Printf("%dD side %-2d %-7d %-9d %-12.2g", cfgEntry.dim, cfgEntry.side, g.N(), delta, pStar)
		for _, churn := range churns {
			ok := 0
			const trials = 5
			for t := 0; t < trials; t++ {
				pat := faultexp.RandomNodeFaults(g, churn, rng.Split())
				faulty := pat.Apply(g)
				res := faultexp.Prune2(faulty.G, alphaE.EdgeAlpha, eps, rng.Split())
				if res.SurvivorSize() >= g.N()/2 && res.CertifiedQuotient > res.Threshold {
					ok++
				}
			}
			fmt.Printf("  %d/%d        ", ok, trials)
		}
		fmt.Println()
	}
	fmt.Println("\nreading: the theorem's p* is very conservative — overlays keep a healthy core")
	fmt.Println("well past it, but tolerance shrinks as the degree (dimension) grows, exactly")
	fmt.Println("the inverse-polynomial-in-d shape the paper derives for CAN.")
}
