// Attack: adversarial fault tolerance across topologies. The paper's
// Theorem 2.1 says a graph with expansion α survives Θ(α·n) adversarial
// faults with its expansion intact; Theorem 2.3 shows the chain graph
// meets this with a matching attack. This example pits three topologies
// of similar size against escalating adversarial budgets and reports
// when each stops containing a half-sized component of healthy
// expansion.
package main

import (
	"fmt"

	"faultexp"
)

func main() {
	rng := faultexp.NewRNG(1)

	expander := faultexp.Expander(16)                          // 256 nodes, constant expansion
	torus := faultexp.Torus(16, 16)                            // 256 nodes, expansion Θ(1/√n)
	chain := faultexp.ChainReplace(faultexp.Expander(4), 15).G // 16+120·... ≈ chains of 15

	type entry struct {
		name string
		g    *faultexp.Graph
	}
	entries := []entry{
		{"expander (α=const)", expander},
		{"torus (α~1/√n)", torus},
		{"chain graph (α~1/k)", chain},
	}

	fmt.Println("bottleneck-adversary attack: largest healthy core vs fault budget")
	fmt.Printf("%-22s %-7s %-9s", "topology", "n", "alpha")
	budgetFracs := []float64{0.01, 0.03, 0.06, 0.12}
	for _, b := range budgetFracs {
		fmt.Printf("  f=%.0f%%n ", b*100)
	}
	fmt.Println()

	for _, en := range entries {
		alpha, _ := faultexp.NodeExpansion(en.g, rng.Split())
		fmt.Printf("%-22s %-7d %-9.4f", en.name, en.g.N(), alpha.NodeAlpha)
		for _, bf := range budgetFracs {
			f := int(bf * float64(en.g.N()))
			if f < 1 {
				f = 1
			}
			pat := faultexp.AdversarialFaults(en.g, f, rng.Split())
			faulty := pat.Apply(en.g)
			res := faultexp.Prune(faulty.G, alpha.NodeAlpha, 0.5, rng.Split())
			frac := float64(res.SurvivorSize()) / float64(en.g.N())
			fmt.Printf("  %5.1f%%  ", 100*frac)
		}
		fmt.Println()
	}

	fmt.Println("\nreading: survivors shrink in proportion to f/α (Theorem 2.1) — the expander")
	fmt.Println("barely notices budgets that erase most of the low-expansion chain graph,")
	fmt.Println("and the torus sits in between, exactly the α-ordering the paper predicts.")
}
