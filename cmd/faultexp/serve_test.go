package main

// Tests for the HTTP daemon, driven through httptest against the same
// handler `faultexp serve` mounts. The headline check mirrors the CI
// smoke step: the daemon's streamed results are byte-identical to the
// CLI sweep path for the same spec.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"faultexp/internal/cache"
	"faultexp/internal/fabric"
	"faultexp/internal/sweep"
)

// serveSpecJSON is the golden grid (see sweep_test.go) in spec form, so
// the HTTP stream can be diffed against the checked-in golden JSONL.
const serveSpecJSON = `{
  "families": [
    {"family": "mesh", "size": "4x4"},
    {"family": "torus", "size": "4x4"},
    {"family": "hypercube", "size": "4"}
  ],
  "measures": ["gamma", "percolation"],
  "model": "iid-node",
  "rates": [0, 0.25, 0.5, 0.75],
  "trials": 2,
  "seed": 42
}`

// slowSpecJSON is a grid whose cells are genuinely slow (thousands of
// BFS trials on a 2304-node torus each, ~300ms/cell — a multi-second
// run in total), so cancellation tests catch it mid-run even when HTTP
// round-trips on a loaded machine cost 100ms+. Nothing waits for it to
// finish: every test that submits it cancels it.
const slowSpecJSON = `{
  "families": [{"family": "torus", "size": "48x48"}],
  "measures": ["gamma"],
  "model": "iid-node",
  "rates": [0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4],
  "trials": 3000,
  "seed": 7,
  "workers": 2
}`

func newTestServer(t *testing.T, maxActive, maxJobs int) (*httptest.Server, *fabric.Server) {
	t.Helper()
	mgr := fabric.NewServer(context.Background(), fabric.Config{MaxActive: maxActive, MaxJobs: maxJobs})
	srv := httptest.NewServer(mgr.Handler())
	t.Cleanup(func() {
		mgr.CancelAll()
		srv.Close()
	})
	return srv, mgr
}

func postJob(t *testing.T, srv *httptest.Server, spec string) fabric.JobView {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, b)
	}
	var v fabric.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding POST response: %v", err)
	}
	if v.ID == "" {
		t.Fatal("POST response carries no job id")
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, v.ID)
	}
	return v
}

func getView(t *testing.T, srv *httptest.Server, id string) fabric.JobView {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s = %d", id, resp.StatusCode)
	}
	var v fabric.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	return v
}

func waitTerminal(t *testing.T, srv *httptest.Server, id string) fabric.JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getView(t, srv, id)
		if v.Snapshot.State.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return fabric.JobView{}
}

// TestServeResultsByteIdenticalToCLI is the acceptance check: the same
// spec through `faultexp sweep` and through the daemon produces the
// same bytes — and a re-attaching client using ?from= splices back into
// the identical stream.
func TestServeResultsByteIdenticalToCLI(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(specPath, []byte(serveSpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	ref := filepath.Join(dir, "ref.jsonl")
	if err := cmdSweep(context.Background(), []string{"-spec", specPath, "-quiet", "-jsonl", ref}); err != nil {
		t.Fatalf("CLI sweep: %v", err)
	}
	want := readFile(t, ref)

	srv, _ := newTestServer(t, 2, 8)
	v := postJob(t, srv, serveSpecJSON)
	if v.Snapshot.CellsTotal != 24 {
		t.Fatalf("submitted job sees %d cells, want 24", v.Snapshot.CellsTotal)
	}

	// The results stream follows the job live and ends at terminal
	// state; reading it to EOF is the whole synchronization.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/results")
	if err != nil {
		t.Fatalf("GET results: %v", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading results stream: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("results Content-Type = %q", ct)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("HTTP results differ from CLI sweep output:\n--- http ---\n%s--- cli ---\n%s", got, want)
	}

	fin := waitTerminal(t, srv, v.ID)
	if fin.Snapshot.State != sweep.JobDone {
		t.Fatalf("final state %q, want done", fin.Snapshot.State)
	}
	if fin.Snapshot.CellsDone != 24 || fin.Snapshot.Errors != 0 {
		t.Fatalf("final snapshot %+v", fin.Snapshot)
	}

	// A client that lost its stream after K records re-attaches with
	// ?from=K and receives exactly the remaining bytes.
	lines := bytes.SplitAfter(want, []byte("\n"))
	for _, from := range []int{0, 1, 5, 24} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/results?from=%d", srv.URL, v.ID, from))
		if err != nil {
			t.Fatalf("GET results?from=%d: %v", from, err)
		}
		part, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if want := bytes.Join(lines[from:], nil); !bytes.Equal(part, want) {
			t.Errorf("results?from=%d returned %d bytes, want %d", from, len(part), len(want))
		}
	}

	// The job list includes the finished job.
	lresp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []fabric.JobView `json:"jobs"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatalf("decoding job list: %v", err)
	}
	lresp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID {
		t.Errorf("job list = %+v, want exactly %s", list.Jobs, v.ID)
	}
}

func TestServeCancelDrainsAtCellBoundary(t *testing.T) {
	srv, _ := newTestServer(t, 1, 8)
	v := postJob(t, srv, slowSpecJSON)

	// Wait for the first streamed record so the job is demonstrably
	// mid-run, then cancel.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	br := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, br); err != nil {
		t.Fatalf("waiting for first result byte: %v", err)
	}
	del, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", dresp.StatusCode)
	}
	// The live stream must terminate (not hang) once the job drains.
	rest, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("draining stream after cancel: %v", err)
	}
	got := append(br, rest...)

	fin := waitTerminal(t, srv, v.ID)
	if fin.Snapshot.State != sweep.JobCancelled {
		t.Fatalf("state after DELETE = %q, want cancelled", fin.Snapshot.State)
	}
	if fin.Snapshot.CellsDone == 0 || fin.Snapshot.CellsDone >= fin.Snapshot.CellsTotal {
		t.Fatalf("cancelled with %d of %d cells, want a proper nonempty prefix", fin.Snapshot.CellsDone, fin.Snapshot.CellsTotal)
	}
	if fin.Snapshot.Err == "" {
		t.Error("cancelled snapshot carries no err message")
	}

	// The streamed prefix is complete records matching the snapshot.
	if got[len(got)-1] != '\n' {
		t.Fatal("cancelled stream ends mid-record")
	}
	if n := len(bytes.Split(bytes.TrimSpace(got), []byte("\n"))); n != fin.Snapshot.CellsDone {
		t.Errorf("stream delivered %d records, snapshot says %d", n, fin.Snapshot.CellsDone)
	}
	// Each record decodes.
	for i, ln := range bytes.Split(bytes.TrimSpace(got), []byte("\n")) {
		var r sweep.Result
		if err := json.Unmarshal(ln, &r); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
	}
}

func TestServeBoundedPoolQueuesAndRefuses(t *testing.T) {
	srv, _ := newTestServer(t, 1, 2)
	first := postJob(t, srv, slowSpecJSON)
	second := postJob(t, srv, slowSpecJSON)

	// With one slot, the second job must still be pending while the
	// first runs (poll briefly — submission is asynchronous).
	deadline := time.Now().Add(5 * time.Second)
	var s1, s2 sweep.JobState
	for time.Now().Before(deadline) {
		s1 = getView(t, srv, first.ID).Snapshot.State
		s2 = getView(t, srv, second.ID).Snapshot.State
		if s1 == sweep.JobRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s1 != sweep.JobRunning || s2 != sweep.JobPending {
		t.Fatalf("states = %q/%q, want running/pending under a 1-slot pool", s1, s2)
	}

	// The store holds 2 of max 2: a third submission is refused.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(serveSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third POST = %d, want 503", resp.StatusCode)
	}

	// Cancelling the queued job resolves it without ever running a cell;
	// cancelling the running one frees the slot.
	for _, id := range []string{second.ID, first.ID} {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %s = %d", id, dresp.StatusCode)
		}
	}
	if fin := waitTerminal(t, srv, second.ID); fin.Snapshot.State != sweep.JobCancelled || fin.Snapshot.CellsDone != 0 {
		t.Errorf("queued-then-cancelled job = %+v, want cancelled with 0 cells", fin.Snapshot)
	}
	waitTerminal(t, srv, first.ID)
}

func TestServeErrorPaths(t *testing.T) {
	srv, _ := newTestServer(t, 1, 4)
	// Malformed and invalid specs are 400 with a JSON error body.
	for _, body := range []string{
		"{not json",
		`{"families":[{"family":"nosuch","size":"4x4"}],"measures":["gamma"],"rates":[0],"trials":1,"seed":1}`,
		`{"families":[{"family":"torus","size":"4x4"}],"measures":["gamma"],"rates":[0],"trials":1,"seed":1,"bogus":true}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Errorf("POST bad spec: error body missing (%v)", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST bad spec = %d, want 400", resp.StatusCode)
		}
	}
	// Unknown ids are 404 on every per-job route.
	for _, req := range []*http.Request{
		mustReq(t, http.MethodGet, srv.URL+"/v1/jobs/nope"),
		mustReq(t, http.MethodGet, srv.URL+"/v1/jobs/nope/results"),
		mustReq(t, http.MethodDelete, srv.URL+"/v1/jobs/nope"),
	} {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", req.Method, req.URL.Path, resp.StatusCode)
		}
	}
	// Bad ?from= is a 400.
	v := postJob(t, srv, serveSpecJSON)
	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/results?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("results?from=-1 = %d, want 400", resp.StatusCode)
	}
	waitTerminal(t, srv, v.ID)
}

// TestServeStoreEvictsFinishedJobs: a full store makes room by dropping
// the oldest finished jobs rather than 503ing forever, and DELETE on a
// finished job evicts it explicitly.
func TestServeStoreEvictsFinishedJobs(t *testing.T) {
	srv, _ := newTestServer(t, 2, 2)
	a := postJob(t, srv, serveSpecJSON)
	b := postJob(t, srv, serveSpecJSON)
	waitTerminal(t, srv, a.ID)
	waitTerminal(t, srv, b.ID)

	// Store is at capacity (2/2) but both jobs are done: the next
	// submission evicts the oldest (a) instead of failing.
	c := postJob(t, srv, serveSpecJSON)
	resp, err := http.Get(srv.URL + "/v1/jobs/" + a.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job %s still answers %d, want 404", a.ID, resp.StatusCode)
	}
	waitTerminal(t, srv, c.ID)

	// DELETE on a finished job removes it outright.
	req := mustReq(t, http.MethodDelete, srv.URL+"/v1/jobs/"+b.ID)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v fabric.JobView
	if err := json.NewDecoder(dresp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding DELETE response: %v", err)
	}
	dresp.Body.Close()
	if !v.Removed {
		t.Errorf("DELETE of finished job %s not marked removed: %+v", b.ID, v)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + b.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETEd finished job %s still answers %d, want 404", b.ID, resp.StatusCode)
	}
}

// TestServeRejectsBadWorkers: a hostile workers value in a POSTed spec
// is a 400, never a daemon-killing panic.
func TestServeRejectsBadWorkers(t *testing.T) {
	srv, _ := newTestServer(t, 1, 4)
	bad := `{"families":[{"family":"torus","size":"4x4"}],"measures":["gamma"],"model":"iid-node","rates":[0],"trials":1,"seed":1,"workers":-1}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST workers=-1 = %d, want 400", resp.StatusCode)
	}
	// A huge workers value is clamped, runs, and completes.
	huge := `{"families":[{"family":"torus","size":"4x4"}],"measures":["gamma"],"model":"iid-node","rates":[0],"trials":1,"seed":1,"workers":1000000000}`
	v := postJob(t, srv, huge)
	if fin := waitTerminal(t, srv, v.ID); fin.Snapshot.State != sweep.JobDone {
		t.Errorf("huge-workers job finished %q, want done", fin.Snapshot.State)
	}
}

func mustReq(t *testing.T, method, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestServeMaxResultBytes: a job whose output would exceed the per-job
// retention cap fails with a clear error instead of holding the
// daemon's heap hostage, and the results stream closes with a final
// parseable record naming the truncation.
func TestServeMaxResultBytes(t *testing.T) {
	mgr := fabric.NewServer(context.Background(), fabric.Config{MaxActive: 1, MaxJobs: 4, MaxResultBytes: 512})
	srv := httptest.NewServer(mgr.Handler())
	t.Cleanup(func() {
		mgr.CancelAll()
		srv.Close()
	})
	v := postJob(t, srv, serveSpecJSON)
	fin := waitTerminal(t, srv, v.ID)
	if fin.Snapshot.State != sweep.JobFailed {
		t.Fatalf("capped job finished %q, want failed", fin.Snapshot.State)
	}
	if !strings.Contains(fin.Snapshot.Err, "max-result-bytes") {
		t.Errorf("snapshot err = %q, want it to name -max-result-bytes", fin.Snapshot.Err)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(body)) > 512+1024 {
		t.Errorf("stream retained %d bytes, cap was 512 (+ one trailer record)", len(body))
	}
	lines := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))
	var last sweep.Result
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatalf("trailer record is not valid JSON: %v", err)
	}
	if !strings.Contains(last.Err, "truncated") {
		t.Errorf("trailer err = %q, want a truncation notice", last.Err)
	}
	// Records before the trailer are ordinary results.
	var first sweep.Result
	if err := json.Unmarshal(lines[0], &first); err != nil || first.Err != "" {
		t.Errorf("first record should be a clean result, got err=%v rec=%+v", err, first)
	}
}

// streamLines attaches to a job's results stream at offset `from`, reads
// up to n lines, and drops the connection — the flaky-client shape.
func streamLines(t *testing.T, srv *httptest.Server, id string, from, n int) [][]byte {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", fmt.Sprintf("%s/v1/jobs/%s/results?from=%d", srv.URL, id, from), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET results = %d", resp.StatusCode)
	}
	var out [][]byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for len(out) < n && sc.Scan() {
		out = append(out, append([]byte(nil), sc.Bytes()...))
	}
	return out
}

// TestServeStreamChurn pins the reader-lifecycle machinery in
// resultLog.next — the context.AfterFunc wakeup that unparks a follower
// whose connection died — by hammering a slow job with readers that
// attach mid-run, drop, and re-attach with ?from=. Run under -race this
// also checks the broadcast paths (writer, finish, reader-drop) are
// data-race-free. The spliced re-attached reads must be byte-identical
// to a continuous read, which is the service's resume contract.
func TestServeStreamChurn(t *testing.T) {
	srv, _ := newTestServer(t, 1, 4)
	v := postJob(t, srv, slowSpecJSON)
	defer func() {
		req := mustReq(t, "DELETE", srv.URL+"/v1/jobs/"+v.ID)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
		waitTerminal(t, srv, v.ID)
	}()

	// A churny client: read two records, drop, splice back with ?from=.
	first := streamLines(t, srv, v.ID, 0, 2)
	if len(first) != 2 {
		t.Fatalf("first attach read %d records, want 2", len(first))
	}
	respliced := streamLines(t, srv, v.ID, 1, 2)
	if len(respliced) < 1 {
		t.Fatal("re-attach with ?from=1 read nothing")
	}
	if !bytes.Equal(respliced[0], first[1]) {
		t.Errorf("spliced stream differs at record 1:\n re-attach: %s\n original:  %s", respliced[0], first[1])
	}

	// Concurrent churn: many readers attaching at random offsets and
	// dropping early while the writer is live, plus one that parks on a
	// not-yet-written index before dropping (the AfterFunc wakeup path).
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			streamLines(t, srv, v.ID, from, 2)
		}(i % 3)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// from=9999 waits for a record the cancelled job will never
		// produce; the reader must unpark when its context dies.
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/jobs/"+v.ID+"/results?from=9999", nil)
		if err != nil {
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	wg.Wait()
}

// TestServeCancelQueuedJobAcknowledgedImmediately is the regression test
// for the queued-DELETE race: cancelling a job that is still waiting for
// a pool slot must resolve it to the cancelled terminal state before the
// DELETE response is written — no waiting for pool admission, no stale
// "pending" snapshot in the response — and must not disturb the running
// job that holds the slot.
func TestServeCancelQueuedJobAcknowledgedImmediately(t *testing.T) {
	srv, _ := newTestServer(t, 1, 8)
	first := postJob(t, srv, slowSpecJSON)

	// Wait until the slow job provably holds the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if getView(t, srv, first.ID).Snapshot.State == sweep.JobRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s := getView(t, srv, first.ID).Snapshot.State; s != sweep.JobRunning {
		t.Fatalf("first job state = %q, want running", s)
	}

	second := postJob(t, srv, serveSpecJSON)
	if s := getView(t, srv, second.ID).Snapshot.State; s != sweep.JobPending {
		t.Fatalf("second job state = %q, want pending behind the 1-slot pool", s)
	}

	// DELETE the queued job: the response itself must already carry the
	// cancelled terminal state with zero cells run.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+second.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	var dv fabric.JobView
	if err := json.NewDecoder(dresp.Body).Decode(&dv); err != nil {
		t.Fatalf("decoding DELETE response: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", dresp.StatusCode)
	}
	if dv.Snapshot.State != sweep.JobCancelled {
		t.Fatalf("DELETE response state = %q, want cancelled (queued cancel must be acknowledged, not raced)", dv.Snapshot.State)
	}
	if dv.Snapshot.CellsDone != 0 {
		t.Errorf("queued job ran %d cells before cancel, want 0", dv.Snapshot.CellsDone)
	}

	// The running job is untouched by the queued cancel.
	if s := getView(t, srv, first.ID).Snapshot.State; s != sweep.JobRunning {
		t.Errorf("first job state after queued DELETE = %q, want still running", s)
	}
	// Its stream closes promptly too (the log finished without output).
	if resp, err := http.Get(srv.URL + "/v1/jobs/" + second.ID + "/results"); err == nil {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if len(b) != 0 {
			t.Errorf("cancelled queued job streamed %d bytes", len(b))
		}
	}

	cancelDeleteJob(t, srv, first.ID)
	waitTerminal(t, srv, first.ID)
}

// cancelDeleteJob issues DELETE and only checks the status code.
func cancelDeleteJob(t *testing.T, srv *httptest.Server, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", id, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE %s = %d", id, resp.StatusCode)
	}
}

// TestServeCacheSharedAcrossJobs: with -cache, a job identical to an
// earlier one answers entirely from the cache — its snapshot reports
// hits == cells — and its stream is byte-identical to the first job's.
func TestServeCacheSharedAcrossJobs(t *testing.T) {
	rc, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := fabric.NewServer(context.Background(), fabric.Config{
		MaxActive: 2, MaxJobs: 8, Cache: rc, Flight: cache.NewFlight()})
	srv := httptest.NewServer(mgr.Handler())
	t.Cleanup(func() {
		mgr.CancelAll()
		srv.Close()
	})

	read := func(id string) []byte {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/results")
		if err != nil {
			t.Fatalf("GET results: %v", err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	v1 := postJob(t, srv, serveSpecJSON)
	out1 := read(v1.ID)
	fin1 := waitTerminal(t, srv, v1.ID)
	if fin1.Snapshot.State != sweep.JobDone {
		t.Fatalf("first job state %q", fin1.Snapshot.State)
	}
	if fin1.Snapshot.CacheMisses != int64(fin1.Snapshot.CellsTotal) || fin1.Snapshot.CacheHits != 0 {
		t.Fatalf("cold job counters: %d hits, %d misses over %d cells",
			fin1.Snapshot.CacheHits, fin1.Snapshot.CacheMisses, fin1.Snapshot.CellsTotal)
	}

	v2 := postJob(t, srv, serveSpecJSON)
	out2 := read(v2.ID)
	fin2 := waitTerminal(t, srv, v2.ID)
	if fin2.Snapshot.State != sweep.JobDone {
		t.Fatalf("second job state %q", fin2.Snapshot.State)
	}
	if fin2.Snapshot.CacheHits != int64(fin2.Snapshot.CellsTotal) || fin2.Snapshot.CacheMisses != 0 {
		t.Fatalf("warm job counters: %d hits, %d misses over %d cells",
			fin2.Snapshot.CacheHits, fin2.Snapshot.CacheMisses, fin2.Snapshot.CellsTotal)
	}
	if !bytes.Equal(out1, out2) {
		t.Error("warm job stream differs from cold job stream")
	}
}
