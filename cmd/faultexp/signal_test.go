//go:build unix

package main

// The interrupt contract, driven through a real SIGINT: a sweep killed
// mid-run exits non-zero with a "resumable at cell K" message, leaves
// its JSONL output a clean record-boundary prefix, and `-resume`
// completes it to bytes identical to a run that was never interrupted.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
)

// sigGridArgs is a grid whose cells are genuinely slow (hundreds of
// BFS trials on a 2304-node torus each, ~10ms+), so a signal fired
// after the second cell always lands while most of the run is still
// ahead of the dispatcher.
func sigGridArgs(extra ...string) []string {
	base := []string{
		"-families", "torus:48x48",
		"-measures", "gamma",
		"-model", "iid-node",
		"-rates", "0,0.02,0.05,0.1,0.15,0.2,0.25,0.3,0.35,0.4",
		"-trials", "200",
		"-seed", "3",
		"-workers", "2",
		"-quiet",
	}
	return append(base, extra...)
}

func TestSweepSIGINTResumesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	if err := cmdSweep(context.Background(), sigGridArgs("-jsonl", full)); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want := readFile(t, full)
	totalCells := len(bytes.Split(bytes.TrimSpace(want), []byte("\n")))

	// Interrupted run: deliver a real SIGINT to ourselves once the
	// second cell has been emitted. cmdSweep's signal context catches
	// it, cancels the Job, and the pool drains at a cell boundary.
	out := filepath.Join(dir, "out.jsonl")
	var once sync.Once
	sweepCellHook = func(done, total int) {
		if done >= 2 {
			once.Do(func() {
				if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
					t.Errorf("sending SIGINT: %v", err)
				}
			})
		}
	}
	defer func() { sweepCellHook = nil }()
	err := cmdSweep(context.Background(), sigGridArgs("-jsonl", out))
	sweepCellHook = nil
	if err == nil {
		t.Fatal("interrupted sweep returned nil (the signal should have cancelled the run)")
	}
	if !strings.Contains(err.Error(), "resumable at cell") {
		t.Fatalf("interrupt error %q does not say where the run is resumable", err)
	}
	if !strings.Contains(err.Error(), "-resume "+out) {
		t.Fatalf("interrupt error %q does not name the -resume file", err)
	}

	// The flushed output is a clean prefix: record-boundary cut, at
	// least the 2 cells we waited for, not the whole run.
	got := readFile(t, out)
	if !bytes.HasPrefix(want, got) {
		t.Fatalf("interrupted output is not a byte-prefix of the uninterrupted run:\n--- got ---\n%s", got)
	}
	if len(got) == 0 || got[len(got)-1] != '\n' {
		t.Fatal("interrupted output ends mid-record")
	}
	gotCells := len(bytes.Split(bytes.TrimSpace(got), []byte("\n")))
	if gotCells < 2 || gotCells >= totalCells {
		t.Fatalf("interrupted run flushed %d of %d cells, want a proper prefix of ≥ 2", gotCells, totalCells)
	}

	// Resume completes to byte identity.
	if err := cmdSweep(context.Background(), sigGridArgs("-resume", out)); err != nil {
		t.Fatalf("resume after SIGINT: %v", err)
	}
	if resumed := readFile(t, out); !bytes.Equal(resumed, want) {
		t.Errorf("interrupted+resumed output differs from uninterrupted run:\n--- got ---\n%s--- want ---\n%s", resumed, want)
	}
}

// TestSweepPreCancelledContext pins the no-signal path through the same
// machinery: a context cancelled before the run starts yields the
// interrupted error and no output.
func TestSweepPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := filepath.Join(t.TempDir(), "out.jsonl")
	err := cmdSweep(ctx, sigGridArgs("-jsonl", out))
	if err == nil || !strings.Contains(err.Error(), "resumable at cell 0") {
		t.Fatalf("pre-cancelled sweep = %v, want 'resumable at cell 0'", err)
	}
	if b := readFile(t, out); len(b) != 0 {
		t.Errorf("pre-cancelled sweep wrote %d bytes", len(b))
	}
}
