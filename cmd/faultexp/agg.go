package main

// The agg subcommand: group sweep JSONL records by chosen dimensions
// and emit n/mean/std/min/max/median summary tables (CSV or JSONL) for
// plotting. Streaming — O(groups × metrics) memory, so it summarizes
// outputs far larger than RAM; input files are consumed in argument
// order (stdin when none given). The median is exact for groups of up
// to 64 values and a P² streaming estimate for larger ones.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"faultexp/internal/sweep"
)

func cmdAgg(ctx context.Context, args []string) error {
	ctx, stop := signalContext(ctx)
	defer stop()
	fs := flag.NewFlagSet("agg", flag.ExitOnError)
	by := fs.String("by", "measure,model,rate", "comma list of grouping dimensions ("+strings.Join(sweep.AggDims, "|")+"); empty = one global group")
	metrics := fs.String("metrics", "", "comma list of metric keys to keep (default all)")
	csvOut := fs.String("csv", "", `CSV output path ("-" = stdout; the default when -jsonl is unset)`)
	jsonlOut := fs.String("jsonl", "", `JSONL output path ("-" = stdout)`)
	quiet := fs.Bool("quiet", false, "suppress the summary line on stderr")
	// Accept flags and input files interleaved (`agg -by rate out.jsonl
	// -csv sum.csv` is the documented form): flag.Parse stops at the
	// first positional, so keep re-parsing the remainder.
	var inputs []string
	for rest := args; ; {
		fs.Parse(rest)
		rest = fs.Args()
		if len(rest) == 0 {
			break
		}
		inputs = append(inputs, rest[0])
		rest = rest[1:]
	}

	dims, err := sweep.ParseAggDims(*by)
	if err != nil {
		return err
	}
	var keep []string
	for _, m := range strings.Split(*metrics, ",") {
		if m = strings.TrimSpace(m); m != "" {
			keep = append(keep, m)
		}
	}
	agg, err := sweep.NewAggregator(dims, keep)
	if err != nil {
		return err
	}

	if len(inputs) == 0 {
		if err := agg.AddJSONL(ctxReader{ctx: ctx, r: os.Stdin}); err != nil {
			return err
		}
	}
	for _, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		// SIGINT/SIGTERM aborts at the next record read.
		err = agg.AddJSONL(ctxReader{ctx: ctx, r: f})
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}

	if *csvOut == "" && *jsonlOut == "" {
		*csvOut = "-"
	}
	open := func(path string) (io.Writer, func() error, error) {
		if path == "-" {
			return os.Stdout, func() error { return nil }, nil
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		return f, f.Close, nil
	}
	var closers []func() error
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	if *csvOut != "" {
		w, cl, err := open(*csvOut)
		if err != nil {
			return err
		}
		closers = append(closers, cl)
		if err := agg.WriteCSV(w); err != nil {
			return err
		}
	}
	if *jsonlOut != "" {
		w, cl, err := open(*jsonlOut)
		if err != nil {
			return err
		}
		closers = append(closers, cl)
		if err := agg.WriteJSONL(w); err != nil {
			return err
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "agg: %d records into %d summary rows", agg.Records, agg.NumRows())
		if agg.Skipped > 0 {
			fmt.Fprintf(os.Stderr, " (%d error records skipped)", agg.Skipped)
		}
		fmt.Fprintln(os.Stderr)
	}
	return nil
}
