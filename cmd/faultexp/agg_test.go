package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAggCLI drives the agg subcommand over a real sweep output: group
// the golden grid by measure/rate and check the summary table shape and
// determinism.
func TestAggCLI(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.jsonl")
	args := []string{
		"-families", "mesh:4x4,torus:4x4,hypercube:4",
		"-measures", "gamma,percolation",
		"-model", "iid-node",
		"-rates", "0,0.25,0.5,0.75",
		"-trials", "2",
		"-seed", "42",
		"-quiet",
		"-jsonl", in,
	}
	if err := cmdSweep(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	csvOut := filepath.Join(dir, "sum.csv")
	jsonlOut := filepath.Join(dir, "sum.jsonl")
	if err := cmdAgg(context.Background(), []string{"-quiet", "-by", "measure,rate", "-metrics", "gamma_mean", "-csv", csvOut, "-jsonl", jsonlOut, in}); err != nil {
		t.Fatal(err)
	}
	b := readFile(t, csvOut)
	rows, err := csv.NewReader(bytes.NewReader(b)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 measures × 4 rates, one metric each.
	if len(rows) != 9 {
		t.Fatalf("%d CSV rows, want 9:\n%s", len(rows), b)
	}
	if got := strings.Join(rows[0], ","); got != "measure,rate,metric,n,mean,std,min,max,median" {
		t.Errorf("header %q", got)
	}
	// Each group aggregates the 3 families; rate-0 gamma is exactly 1.
	if rows[1][0] != "gamma" || rows[1][1] != "0" || rows[1][3] != "3" || rows[1][4] != "1" {
		t.Errorf("first data row %v", rows[1])
	}
	jl := readFile(t, jsonlOut)
	if lines := bytes.Split(bytes.TrimSpace(jl), []byte("\n")); len(lines) != 8 {
		t.Errorf("%d JSONL summary rows, want 8", len(lines))
	}
	// Determinism: a second pass produces identical bytes.
	csvOut2 := filepath.Join(dir, "sum2.csv")
	if err := cmdAgg(context.Background(), []string{"-quiet", "-by", "measure,rate", "-metrics", "gamma_mean", "-csv", csvOut2, in}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, csvOut), readFile(t, csvOut2)) {
		t.Error("agg CSV output not deterministic")
	}
	// Flags may follow the input files (the README's documented form).
	csvOut3 := filepath.Join(dir, "sum3.csv")
	if err := cmdAgg(context.Background(), []string{"-quiet", "-by", "measure,rate", in, "-metrics", "gamma_mean", "-csv", csvOut3}); err != nil {
		t.Fatalf("agg with trailing flags: %v", err)
	}
	if !bytes.Equal(readFile(t, csvOut), readFile(t, csvOut3)) {
		t.Error("trailing-flag invocation differs from flags-first invocation")
	}
	// Bad dimensions and missing files are rejected.
	if err := cmdAgg(context.Background(), []string{"-quiet", "-by", "bogus", in}); err == nil {
		t.Error("agg accepted a bogus dimension")
	}
	if err := cmdAgg(context.Background(), []string{"-quiet", filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Error("agg accepted a missing input file")
	}
	if err := cmdAgg(context.Background(), []string{"-quiet", "-by", "rate,rate", in}); err == nil {
		t.Error("agg accepted duplicate dimensions")
	}
}

// TestAggCLIStdin checks the no-args path reads records from stdin.
func TestAggCLIStdin(t *testing.T) {
	jsonl := `{"family":"torus","size":"4x4","n":16,"m":32,"measure":"x","model":"iid-node","rate":0,"trials":1,"seed":1,"metrics":{"v":3}}
{"family":"torus","size":"4x4","n":16,"m":32,"measure":"x","model":"iid-node","rate":0,"trials":1,"seed":2,"metrics":{"v":5}}`
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteString(jsonl); err != nil {
		t.Fatal(err)
	}
	w.Close()
	oldIn, oldOut := os.Stdin, os.Stdout
	os.Stdin = r
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = outW
	aggErr := cmdAgg(context.Background(), []string{"-quiet", "-by", "measure"})
	outW.Close()
	os.Stdin, os.Stdout = oldIn, oldOut
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(outR); err != nil {
		t.Fatal(err)
	}
	if aggErr != nil {
		t.Fatalf("cmdAgg(stdin): %v", aggErr)
	}
	if !strings.Contains(buf.String(), "x,v,2,4,") {
		t.Errorf("stdin aggregation output:\n%s", buf.String())
	}
}
