// Command faultexp is the command-line interface to the fault-expansion
// library: generate graph families, measure expansion and span, inject
// faults, run the pruning algorithms, sweep percolation curves, and
// reproduce the paper's experiments (E1–E12).
//
// Usage:
//
//	faultexp gen        -family torus -size 16x16 [-out g.txt]
//	faultexp stats      -family torus -size 16x16 | -in g.txt
//	faultexp expansion  -family hypercube -size 8 [-seed 1]
//	faultexp span       -family mesh -size 4x4 [-samples 100]
//	faultexp prune      -family torus -size 16x16 -faults 8 -alpha 0.25 -eps 0.5
//	faultexp prune2     -family torus -size 16x16 -p 0.001 -alphae 0.25 -eps 0.125
//	faultexp percolate  -family torus -size 32x32 -mode bond [-trials 20]
//	faultexp sweep      -families torus:8x8,hypercube:6 -measures gamma,prune2 -rates 0,0.02,0.05,0.1 [-jsonl out.jsonl] [-csv out.csv]
//	faultexp sweep      -spec grid.json -resume out.jsonl | -dry-run [-cache DIR]
//	faultexp serve      -addr 127.0.0.1:8080 [-max-active 2] [-cache DIR]
//	faultexp worker     -addr 127.0.0.1:8081 [-max-active 2] [-cache DIR]
//	faultexp coordinator -addr 127.0.0.1:8090 -workers host:8081,host:8082 -store jobs/
//	faultexp merge      -dir jobs/job-1 [-spec grid.json] | shard0.jsonl shard1.jsonl …
//	faultexp agg        -by family,rate out.jsonl [-csv summary.csv]
//	faultexp experiment E7 [-full] [-seed 42]
//	faultexp experiment all
//	faultexp version
//	faultexp list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"faultexp/internal/balance"
	"faultexp/internal/compact"
	"faultexp/internal/core"
	"faultexp/internal/cuts"
	"faultexp/internal/experiments"
	"faultexp/internal/faults"
	"faultexp/internal/gen"
	"faultexp/internal/graph"
	"faultexp/internal/harness"
	"faultexp/internal/perc"
	"faultexp/internal/route"
	"faultexp/internal/span"
	"faultexp/internal/sweep"
	"faultexp/internal/xrand"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx := context.Background()
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "expansion":
		err = cmdExpansion(os.Args[2:])
	case "span":
		err = cmdSpan(os.Args[2:])
	case "prune":
		err = cmdPrune(os.Args[2:])
	case "prune2":
		err = cmdPrune2(os.Args[2:])
	case "percolate":
		err = cmdPercolate(os.Args[2:])
	case "balance":
		err = cmdBalance(os.Args[2:])
	case "route":
		err = cmdRoute(os.Args[2:])
	case "sweep":
		err = cmdSweep(ctx, os.Args[2:])
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "worker":
		err = cmdWorker(ctx, os.Args[2:])
	case "coordinator":
		err = cmdCoordinator(ctx, os.Args[2:])
	case "merge":
		err = cmdMerge(ctx, os.Args[2:])
	case "agg":
		err = cmdAgg(ctx, os.Args[2:])
	case "experiment":
		err = cmdExperiment(ctx, os.Args[2:])
	case "version", "-version", "--version":
		err = cmdVersion(os.Stdout)
	case "list":
		err = cmdList()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "faultexp: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultexp:", err)
		os.Exit(1)
	}
}

// signalContext derives the command's context, cancelled on SIGINT or
// SIGTERM so the long-running subcommands (sweep, serve, merge, agg,
// experiment) shut down gracefully — sweep drains its Job at a cell
// boundary and flushes a resumable prefix, serve stops accepting and
// cancels its jobs. After the first signal the handler uninstalls
// itself, so a second signal while draining kills the process the
// default way instead of being swallowed.
func signalContext(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}

// ctxReader makes a streaming read loop interruptible: once the
// command's context is cancelled, the next Read fails, unwinding
// merge/agg promptly with a non-zero exit instead of grinding through
// the rest of a multi-gigabyte file.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, fmt.Errorf("interrupted: %w", err)
	}
	return c.r.Read(p)
}

func usage() {
	fmt.Fprintln(os.Stderr, `faultexp — fault-tolerant network expansion toolkit (SPAA'04 reproduction)

commands:
  gen         generate a graph family and write it as an edge list
  stats       basic graph statistics (n, m, degrees, components, diameter)
  expansion   estimate node and edge expansion (exact for n ≤ 22)
  span        compute the span (exact small / sampled large)
  prune       adversarial faults + Prune (Theorem 2.1)
  prune2      random faults + Prune2 (Theorem 3.4)
  percolate   Newman–Ziff percolation sweep and threshold estimate
  balance     diffusion load-balancing rounds (§1.3 application)
  route       random-pairs routing congestion (§1.3 application)
  sweep       run a parameter grid (family × measure × model × rate) streaming JSONL/CSV
              (-resume picks up an interrupted run; -dry-run prints the plan;
              -cache DIR never recomputes a cell already computed under identical
              parameters; SIGINT/SIGTERM drains at a cell boundary, resumable prefix)
  serve       HTTP daemon over the sweep Job API: POST /v1/jobs, snapshot, stream, cancel
              (-cache DIR shares a result cache across jobs with single-flight dedup)
  worker      the serve surface enrolled in a fleet: advertises capacity and kernel
              version on GET /healthz, runs shard slices a coordinator dispatches
  coordinator fleet front-end: splits each job across -workers as -shard i/m slices,
              health-checks and reassigns via resume, streams the merged interleave
              byte-identical to single-node; -store makes every job survive SIGKILL
  merge       reassemble 'sweep -shard i/m' JSONL outputs into the unsharded stream
              (-dir reads a complete shard-<i>-of-<m>.jsonl set, the job-store layout)
  agg         group sweep JSONL records and emit summary tables (CSV/JSONL) for plotting
  experiment  run a reproduction experiment (E1–E19) or "all"
  version     print module version, VCS revision, and toolchain (also: faultexp -version)
  list        list experiments, graph families, sweep measures, and fault models

Run any command with -h for its flags.`)
}

// graphFlags adds the shared -family/-size/-in/-k flags to a FlagSet and
// returns a loader.
func graphFlags(fs *flag.FlagSet) func() (*graph.Graph, []int, error) {
	family := fs.String("family", "", "graph family: "+strings.Join(gen.FamilyNames(), "|"))
	size := fs.String("size", "", "family size, e.g. 16x16 (mesh/torus), 8 (hypercube), 256x4 (rr/gnp/smallworld: n x degree)")
	in := fs.String("in", "", "read graph from edge-list file instead of generating")
	k := fs.Int("k", 4, "family parameter: chain length (chain), rewired edges (smallworld), shortcut edges (shortcut)")
	seed := fs.Uint64("genseed", 1, "seed for randomized generators")
	return func() (*graph.Graph, []int, error) {
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				return nil, nil, err
			}
			defer f.Close()
			g, err := graph.Read(f)
			return g, nil, err
		}
		if *family == "" {
			return nil, nil, fmt.Errorf("need -family or -in")
		}
		return gen.FromFamily(*family, *size, *k, xrand.New(*seed))
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	load := graphFlags(fs)
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)
	g, _, err := load()
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.Write(w)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	load := graphFlags(fs)
	fs.Parse(args)
	g, _, err := load()
	if err != nil {
		return err
	}
	_, sizes := g.Components()
	fmt.Printf("vertices     %d\n", g.N())
	fmt.Printf("edges        %d\n", g.M())
	fmt.Printf("degree       min=%d avg=%.2f max=%d\n", g.MinDegree(), g.AvgDegree(), g.MaxDegree())
	fmt.Printf("components   %d (γ=%.4f)\n", len(sizes), g.GammaLargest())
	if g.N() > 0 {
		fmt.Printf("diameter     ≥ %d (double-sweep lower bound)\n", g.ApproxDiameter(0))
	}
	return nil
}

func cmdExpansion(args []string) error {
	fs := flag.NewFlagSet("expansion", flag.ExitOnError)
	load := graphFlags(fs)
	seed := fs.Uint64("seed", 1, "estimator seed")
	fs.Parse(args)
	g, _, err := load()
	if err != nil {
		return err
	}
	rng := xrand.New(*seed)
	opt := cuts.Options{RNG: rng}
	rn, exactN := cuts.EstimateNodeExpansion(g, opt)
	re, exactE := cuts.EstimateEdgeExpansion(g, opt)
	fmt.Printf("node expansion α  = %.6f  (witness |U|=%d, |Γ(U)|=%d, exact=%v)\n",
		rn.NodeAlpha, rn.Size, rn.Boundary, exactN)
	fmt.Printf("edge expansion αe = %.6f  (witness |U|=%d, cut=%d, exact=%v)\n",
		re.EdgeAlpha, re.Size, re.CutEdges, exactE)
	return nil
}

func cmdSpan(args []string) error {
	fs := flag.NewFlagSet("span", flag.ExitOnError)
	load := graphFlags(fs)
	samples := fs.Int("samples", 100, "compact-set samples for large graphs")
	seed := fs.Uint64("seed", 1, "sampling seed")
	fs.Parse(args)
	g, dims, err := load()
	if err != nil {
		return err
	}
	if g.N() <= compact.MaxEnumN {
		est := span.Exact(g)
		fmt.Printf("exact span σ = %.4f over %d compact sets (steiner exact=%v)\n",
			est.Sigma, est.Sets, est.Exact)
		fmt.Printf("witness: |P(U)|=%d, |Γ(U)|=%d, U=%v\n", est.TreeNodes, est.BoundaryNodes, est.ArgSet)
	} else {
		est := span.Sampled(g, *samples, xrand.New(*seed))
		fmt.Printf("sampled span σ ≥ %.4f over %d compact sets\n", est.Sigma, est.Sets)
		fmt.Printf("witness: |P(U)|=%d, |Γ(U)|=%d\n", est.TreeNodes, est.BoundaryNodes)
	}
	if len(dims) > 1 {
		p := span.FaultToleranceFromSpan(g.MaxDegree(), 2)
		fmt.Printf("mesh: Theorem 3.6 gives σ ≤ 2 → Theorem 3.4 tolerance p ≤ %.3g\n", p)
	}
	return nil
}

func cmdPrune(args []string) error {
	fs := flag.NewFlagSet("prune", flag.ExitOnError)
	load := graphFlags(fs)
	f := fs.Int("faults", 4, "adversarial fault budget")
	alpha := fs.Float64("alpha", 0, "fault-free node expansion α (0 = measure)")
	eps := fs.Float64("eps", 0.5, "degradation ε (Theorem 2.1: ε = 1−1/k)")
	seed := fs.Uint64("seed", 1, "seed")
	adv := fs.String("adversary", "bottleneck", "adversary: bottleneck|random|degree")
	fs.Parse(args)
	g, _, err := load()
	if err != nil {
		return err
	}
	rng := xrand.New(*seed)
	if *alpha == 0 {
		r, _ := cuts.EstimateNodeExpansion(g, cuts.Options{RNG: rng.Split()})
		*alpha = r.NodeAlpha
		fmt.Printf("measured α = %.4f\n", *alpha)
	}
	var adversary faults.Adversary
	switch *adv {
	case "bottleneck":
		adversary = faults.BottleneckAdversary{}
	case "random":
		adversary = faults.RandomAdversary{}
	case "degree":
		adversary = faults.DegreeAdversary{}
	default:
		return fmt.Errorf("unknown adversary %q", *adv)
	}
	pat := adversary.Select(g, *f, rng.Split())
	gf := pat.Apply(g)
	res := core.Prune(gf.G, *alpha, *eps, core.Options{Finder: cuts.Options{RNG: rng.Split()}})
	k := 1 / (1 - *eps)
	fmt.Printf("faults applied      %d (%s)\n", pat.Count(), *adv)
	fmt.Printf("survivor |H|        %d of %d\n", res.SurvivorSize(), g.N())
	fmt.Printf("culled              %d nodes in %d rounds\n", res.CulledTotal, res.Iterations)
	fmt.Printf("threshold α·ε       %.4f\n", res.Threshold)
	fmt.Printf("certified quotient  %.4f\n", res.CertifiedQuotient)
	fmt.Printf("Theorem 2.1 bound   |H| ≥ %.1f (feasible=%v)\n",
		core.Theorem21SizeBound(g.N(), pat.Count(), *alpha, k),
		core.Theorem21Feasible(g.N(), pat.Count(), *alpha, k))
	return nil
}

func cmdPrune2(args []string) error {
	fs := flag.NewFlagSet("prune2", flag.ExitOnError)
	load := graphFlags(fs)
	p := fs.Float64("p", 0.001, "node fault probability")
	alphaE := fs.Float64("alphae", 0, "fault-free edge expansion αe (0 = measure)")
	eps := fs.Float64("eps", 0, "degradation ε (0 = Theorem 3.4 maximum 1/(2δ))")
	seed := fs.Uint64("seed", 1, "seed")
	fs.Parse(args)
	g, _, err := load()
	if err != nil {
		return err
	}
	rng := xrand.New(*seed)
	if *alphaE == 0 {
		r, _ := cuts.EstimateEdgeExpansion(g, cuts.Options{RNG: rng.Split()})
		*alphaE = r.EdgeAlpha
		fmt.Printf("measured αe = %.4f\n", *alphaE)
	}
	if *eps == 0 {
		*eps = core.Theorem34MaxEps(g.MaxDegree())
		fmt.Printf("using ε = 1/(2δ) = %.4f\n", *eps)
	}
	pat := faults.IIDNodes(g, *p, rng.Split())
	gf := pat.Apply(g)
	res := core.Prune2(gf.G, *alphaE, *eps, core.Options{Finder: cuts.Options{RNG: rng.Split()}})
	fmt.Printf("faults              %d (p=%.4g)\n", pat.Count(), *p)
	fmt.Printf("survivor |H|        %d of %d (n/2 = %d)\n", res.SurvivorSize(), g.N(), g.N()/2)
	fmt.Printf("culled              %d nodes in %d rounds\n", res.CulledTotal, res.Iterations)
	fmt.Printf("threshold αe·ε      %.4f\n", res.Threshold)
	fmt.Printf("certified quotient  %.4f\n", res.CertifiedQuotient)
	fmt.Printf("Theorem 3.4 p-bound %.3g (σ=2 mesh assumption)\n",
		core.Theorem34MaxFaultProb(g.MaxDegree(), 2))
	return nil
}

func cmdPercolate(args []string) error {
	fs := flag.NewFlagSet("percolate", flag.ExitOnError)
	load := graphFlags(fs)
	mode := fs.String("mode", "site", "site|bond")
	trials := fs.Int("trials", 20, "Newman–Ziff sweep trials")
	target := fs.Float64("target", 0.2, "γ target for the threshold estimate")
	seed := fs.Uint64("seed", 1, "seed")
	points := fs.Int("points", 11, "curve points to print")
	fs.Parse(args)
	g, _, err := load()
	if err != nil {
		return err
	}
	m := perc.Site
	if *mode == "bond" {
		m = perc.Bond
	}
	rng := xrand.New(*seed)
	curve := perc.Sweep(g, m, *trials, rng)
	fmt.Printf("%s percolation on %v (%d trials)\n", m, g, *trials)
	fmt.Println("  p      γ")
	for i := 0; i < *points; i++ {
		p := float64(i) / float64(*points-1)
		fmt.Printf("  %.2f   %.4f\n", p, curve.AtP(p))
	}
	fmt.Printf("threshold estimate (γ ≥ %.2f): p* ≈ %.4f\n",
		*target, perc.CriticalPFromCurve(curve, *target))
	return nil
}

func cmdBalance(args []string) error {
	fs := flag.NewFlagSet("balance", flag.ExitOnError)
	load := graphFlags(fs)
	tol := fs.Float64("tol", 0.05, "target imbalance (max deviation from mean)")
	maxRounds := fs.Int("maxrounds", 1000000, "round budget")
	fs.Parse(args)
	g, _, err := load()
	if err != nil {
		return err
	}
	if g.N() == 0 {
		return fmt.Errorf("empty graph")
	}
	pt := balance.PointLoad(g.N(), 0, float64(g.N()))
	r := balance.RoundsToBalance(g, pt, *tol, *maxRounds)
	fmt.Printf("point load on node 0, %d units over %d nodes\n", g.N(), g.N())
	if r >= *maxRounds {
		fmt.Printf("did NOT reach imbalance ≤ %.3f within %d rounds\n", *tol, *maxRounds)
	} else {
		fmt.Printf("imbalance ≤ %.3f after %d diffusion rounds\n", *tol, r)
	}
	return nil
}

func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	load := graphFlags(fs)
	pairs := fs.Int("pairs", 500, "random source-destination pairs")
	seed := fs.Uint64("seed", 1, "seed")
	fs.Parse(args)
	g, _, err := load()
	if err != nil {
		return err
	}
	res := route.RandomPairs(g, *pairs, xrand.New(*seed))
	fmt.Printf("routed %d pairs (%d unreachable)\n", res.Pairs, res.Unreached)
	fmt.Printf("congestion        %d (%.4f per pair)\n", res.Congestion, res.CongestionPerPair())
	fmt.Printf("path length       avg %.2f, max %d\n", res.AvgLen(), res.MaxLen)
	return nil
}

func cmdExperiment(ctx context.Context, args []string) error {
	ctx, stop := signalContext(ctx)
	defer stop()
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	full := fs.Bool("full", false, "full (EXPERIMENTS.md) sizes instead of quick")
	seed := fs.Uint64("seed", 20040627, "experiment seed")
	// The experiment ID may precede or follow the flags.
	var id string
	rest := args
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		id = args[0]
		rest = args[1:]
	}
	fs.Parse(rest)
	if id == "" && fs.NArg() > 0 {
		id = fs.Arg(0)
	}
	if id == "" {
		return fmt.Errorf("usage: faultexp experiment <E1..E12|all> [-full] [-seed N]")
	}
	cfg := harness.Config{Quick: !*full, Seed: *seed}
	reg := experiments.Registry()
	var exps []*harness.Experiment
	if strings.EqualFold(id, "all") {
		exps = reg.All()
	} else {
		e, ok := reg.Get(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try 'faultexp list')", id)
		}
		exps = []*harness.Experiment{e}
	}
	failed := 0
	for _, e := range exps {
		// SIGINT/SIGTERM stops between experiments — the finished
		// reports already rendered, the exit is non-zero.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("interrupted: %w", err)
		}
		fmt.Printf("running %s (%s)…\n", e.ID, e.PaperRef)
		rep := e.Run(cfg)
		rep.Render(os.Stdout)
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) had failing checks", failed)
	}
	return nil
}

func cmdList() error {
	for _, e := range experiments.All() {
		fmt.Printf("%-4s %-22s %s\n     expects: %s\n", e.ID, e.PaperRef, e.Title, e.Expectation)
	}
	fmt.Printf("\ngraph families (%d):\n", len(gen.Families()))
	for _, f := range gen.Families() {
		size := f.SizeSyntax()
		if f.KUse() != "" {
			size += "[:k]"
		}
		fmt.Printf("  %-11s %-13s %s\n", f.Name(), size, f.Doc())
	}
	fmt.Printf("\nsweep measures (%d): %s\n", len(sweep.Measures()), strings.Join(sweep.Measures(), ", "))
	fmt.Printf("fault models   (%d): %s\n", len(sweep.Models()), strings.Join(sweep.Models(), ", "))
	return nil
}
