package main

// The serve subcommand: an HTTP daemon over the context-aware Job API,
// turning the batch sweep engine into a service. Clients submit grid
// specs, observe lock-free snapshots mid-flight, stream results as they
// are produced, and cancel — the verbs of internal/sweep.Job, one
// endpoint each:
//
//	POST   /v1/jobs               spec JSON → job id (queued into a bounded pool)
//	GET    /v1/jobs               all jobs with snapshots
//	GET    /v1/jobs/{id}          one job's snapshot
//	GET    /v1/jobs/{id}/results  streamed JSONL (?from=K skips the first K cells,
//	                              so a dropped client resumes where it left off)
//	DELETE /v1/jobs/{id}          graceful cancel (drains at a cell boundary)
//
// The results stream is byte-identical to `faultexp sweep -jsonl` for
// the same spec: both paths encode the same Result structs with the
// same json.Marshal. Determinism makes the service idempotent — a
// client that loses a stream re-requests with ?from= and the bytes
// line up exactly.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"faultexp/internal/cache"
	"faultexp/internal/sweep"
)

func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port)")
	maxActive := fs.Int("max-active", 2, "jobs executing concurrently; submissions beyond it queue as pending")
	maxJobs := fs.Int("max-jobs", 64, "jobs held in memory; when full, finished jobs are evicted oldest-first and POST returns 503 only if every held job is still active")
	maxResultBytes := fs.Int64("max-result-bytes", 64<<20, "per-job cap on retained result bytes; a job whose output would exceed it fails with a clear error (0 = unlimited)")
	cacheDir := fs.String("cache", "", "content-addressed result cache directory shared by every job: overlapping grids recompute nothing, and identical cells wanted by concurrent jobs are computed once (single-flight)")
	quiet := fs.Bool("quiet", false, "suppress the startup line on stderr")
	fs.Parse(args)
	if *maxActive < 1 || *maxJobs < 1 {
		return fmt.Errorf("serve: -max-active and -max-jobs must be ≥ 1")
	}
	if *maxResultBytes < 0 {
		return fmt.Errorf("serve: -max-result-bytes must be ≥ 0 (0 = unlimited)")
	}

	ctx, stop := signalContext(ctx)
	defer stop()

	mgr := newJobManager(ctx, *maxActive, *maxJobs, *maxResultBytes)
	if *cacheDir != "" {
		rc, err := cache.Open(*cacheDir)
		if err != nil {
			return err
		}
		mgr.cache, mgr.flight = rc, cache.NewFlight()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mgr.handler()}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "serve: listening on http://%s (POST /v1/jobs, %d concurrent jobs)\n", ln.Addr(), *maxActive)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful shutdown: cancel every job (each drains at a cell
		// boundary), then let in-flight responses finish streaming their
		// final records before the listener closes for good.
		mgr.cancelAll()
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		return srv.Shutdown(shCtx)
	}
}

// resultLog is the in-memory result sink a served job streams into: a
// sweep.Writer that keeps every encoded JSONL line, plus a condition
// variable so any number of HTTP readers can follow the stream live —
// including readers that attach mid-run or re-attach with ?from= after
// a dropped connection.
type resultLog struct {
	mu    sync.Mutex
	cond  *sync.Cond
	lines [][]byte
	bytes int64
	// maxBytes caps the retained result bytes (0 = unlimited): a served
	// job is an in-memory sink, so without a cap one huge grid could
	// hold the daemon's heap hostage for as long as the job stays in
	// the store.
	maxBytes  int64
	truncated bool
	done      bool
}

func newResultLog(maxBytes int64) *resultLog {
	l := &resultLog{maxBytes: maxBytes}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Write implements sweep.Writer. The stored line is exactly what
// NewJSONL would have written — json.Marshal plus a newline — which is
// what makes the HTTP stream byte-identical to the CLI output. A write
// that would push the log past maxBytes fails the job instead: the
// returned error aborts the run (surfacing in the job snapshot), and a
// final parseable record with an Err field closes the stream so a
// follower sees why it stopped short rather than a silent truncation.
func (l *resultLog) Write(r *sweep.Result) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.truncated {
		return fmt.Errorf("serve: result log over -max-result-bytes=%d", l.maxBytes)
	}
	if l.maxBytes > 0 && l.bytes+int64(len(b)) > l.maxBytes {
		l.truncated = true
		tail, _ := json.Marshal(&sweep.Result{Err: fmt.Sprintf("result stream truncated: output exceeds -max-result-bytes=%d", l.maxBytes)})
		l.lines = append(l.lines, append(tail, '\n'))
		l.cond.Broadcast()
		return fmt.Errorf("serve: result log over -max-result-bytes=%d", l.maxBytes)
	}
	l.bytes += int64(len(b))
	l.lines = append(l.lines, b)
	l.cond.Broadcast()
	return nil
}

// Flush implements sweep.Writer (lines are visible as soon as they are
// written; there is nothing buffered to push).
func (l *resultLog) Flush() error { return nil }

// finish marks the stream complete and wakes every follower.
func (l *resultLog) finish() {
	l.mu.Lock()
	l.done = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// next blocks until line i exists, the log is finished, or ctx (the
// HTTP request's context) is cancelled; ok=false means the stream is
// over for this reader.
func (l *resultLog) next(ctx context.Context, i int) (line []byte, ok bool) {
	// Wake the cond wait when the reader disappears, so a dropped
	// connection doesn't park a goroutine for the rest of a long run.
	stopWatch := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stopWatch()
	l.mu.Lock()
	defer l.mu.Unlock()
	for i >= len(l.lines) && !l.done && ctx.Err() == nil {
		l.cond.Wait()
	}
	if i < len(l.lines) && ctx.Err() == nil {
		return l.lines[i], true
	}
	return nil, false
}

// servedJob is one submission: the Job, its result log, and a cancel
// that also unblocks the queue wait if the job never got a slot.
type servedJob struct {
	id      string
	job     *sweep.Job
	log     *resultLog
	created time.Time

	cancelOnce sync.Once
	cancelled  chan struct{}

	// mu guards the admission/cancellation handshake between the pool
	// runner (beginRun) and DELETE (requestCancel): exactly one of
	// "admitted to a slot" and "cancelled while queued" wins, so a
	// queued job's DELETE can safely wait for the (immediate) terminal
	// state instead of racing a Start it cannot see.
	mu              sync.Mutex
	admitted        bool
	cancelRequested bool
}

func (s *servedJob) cancel() {
	s.cancelOnce.Do(func() {
		s.mu.Lock()
		s.cancelRequested = true
		s.mu.Unlock()
		close(s.cancelled)
		s.job.Cancel()
	})
}

// requestCancel cancels the job and reports whether it was still queued
// (never admitted to a pool slot). When queued=true the run goroutine
// is guaranteed to take the pre-cancelled path — Start with a cancelled
// job dispatches nothing — so the caller may block on job.Done() for a
// prompt, acknowledged terminal state. sync.Once makes the ordering
// sound for concurrent DELETEs: cancel() returns only after
// cancelRequested is set, and beginRun checks it under mu.
func (s *servedJob) requestCancel() (queued bool) {
	s.cancel()
	s.mu.Lock()
	queued = !s.admitted
	s.mu.Unlock()
	return queued
}

// beginRun claims the admission slot for a real run. It fails exactly
// when a cancel was requested first — the queued-DELETE case — and the
// caller then starts the job pre-cancelled instead of executing it.
func (s *servedJob) beginRun() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancelRequested {
		return false
	}
	s.admitted = true
	return true
}

// jobManager owns every submitted job and the bounded concurrency pool:
// at most maxActive jobs execute at once (a semaphore; later
// submissions sit in JobPending until a slot frees, FIFO by goroutine
// wakeup), and at most maxJobs are held in memory at all.
type jobManager struct {
	ctx context.Context
	sem chan struct{}

	maxJobs        int
	maxResultBytes int64
	// cache/flight, when set (-cache), are shared by every job: the
	// cache makes overlapping grids incremental across jobs and server
	// restarts; the flight dedups identical cells in concurrent jobs.
	cache  *cache.Cache
	flight *cache.Flight

	mu    sync.Mutex
	jobs  map[string]*servedJob
	order []string
	seq   int
}

func newJobManager(ctx context.Context, maxActive, maxJobs int, maxResultBytes int64) *jobManager {
	return &jobManager{
		ctx:            ctx,
		sem:            make(chan struct{}, maxActive),
		maxJobs:        maxJobs,
		maxResultBytes: maxResultBytes,
		jobs:           map[string]*servedJob{},
	}
}

// submit validates nothing itself — the spec arrives pre-validated by
// sweep.Load — it registers the job and hands it to the pool runner.
func (m *jobManager) submit(spec *sweep.Spec) (*servedJob, error) {
	log := newResultLog(m.maxResultBytes)
	job, err := sweep.NewJob(spec, sweep.WithWriter(log),
		sweep.WithCache(m.cache), sweep.WithFlight(m.flight))
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if len(m.jobs) >= m.maxJobs {
		// Make room by evicting finished jobs, oldest first; only when
		// every held job is still queued or running is the store truly
		// full.
		m.evictTerminalLocked(len(m.jobs) - m.maxJobs + 1)
	}
	if len(m.jobs) >= m.maxJobs {
		m.mu.Unlock()
		return nil, errTooManyJobs
	}
	m.seq++
	sj := &servedJob{
		id:        fmt.Sprintf("job-%d", m.seq),
		job:       job,
		log:       log,
		created:   time.Now(),
		cancelled: make(chan struct{}),
	}
	m.jobs[sj.id] = sj
	m.order = append(m.order, sj.id)
	m.mu.Unlock()
	go m.run(sj)
	return sj, nil
}

var errTooManyJobs = fmt.Errorf("job store full")

// evictTerminalLocked drops up to n of the oldest terminal jobs (their
// result logs with them). Active jobs are never evicted. Caller holds
// m.mu.
func (m *jobManager) evictTerminalLocked(n int) {
	kept := m.order[:0]
	for _, id := range m.order {
		if n > 0 && m.jobs[id].job.Snapshot().State.Terminal() {
			delete(m.jobs, id)
			n--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// remove drops one job from the store (the DELETE-a-finished-job path).
func (m *jobManager) remove(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[id]; !ok {
		return
	}
	delete(m.jobs, id)
	kept := m.order[:0]
	for _, o := range m.order {
		if o != id {
			kept = append(kept, o)
		}
	}
	m.order = kept
}

// run waits for a pool slot, executes the job, and completes its result
// log. A job cancelled while queued (DELETE, or server shutdown) still
// passes through Start so it reaches the ordinary cancelled terminal
// state and its streams close.
func (m *jobManager) run(sj *servedJob) {
	acquired := false
	select {
	case m.sem <- struct{}{}:
		acquired = true
	case <-sj.cancelled:
	case <-m.ctx.Done():
	}
	if acquired {
		defer func() { <-m.sem }()
	}
	if !acquired || !sj.beginRun() {
		// Never got a slot, or was cancelled between queueing and
		// admission (beginRun loses to requestCancel exactly once, under
		// the same lock): start pre-cancelled so Wait/Snapshot/streams
		// all resolve through the ordinary cancelled terminal state —
		// immediately, without computing anything.
		sj.job.Cancel()
	}
	if err := sj.job.Start(m.ctx); err != nil {
		sj.log.finish()
		return
	}
	sj.job.Wait()
	sj.log.finish()
}

func (m *jobManager) get(id string) (*servedJob, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sj, ok := m.jobs[id]
	return sj, ok
}

// list returns the jobs in submission order.
func (m *jobManager) list() []*servedJob {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*servedJob, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// cancelAll is the shutdown path: every job drains at a cell boundary.
func (m *jobManager) cancelAll() {
	for _, sj := range m.list() {
		sj.cancel()
	}
}

// jobView is the JSON shape of one job in responses.
type jobView struct {
	ID       string         `json:"id"`
	Created  time.Time      `json:"created"`
	Snapshot sweep.Snapshot `json:"snapshot"`
	// Removed marks a DELETE response for a job that was already
	// terminal: the job (and its stored results) left the store.
	Removed bool `json:"removed,omitempty"`
}

func (s *servedJob) view() jobView {
	return jobView{ID: s.id, Created: s.created, Snapshot: s.job.Snapshot()}
}

// handler wires the /v1 routes.
func (m *jobManager) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", m.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", m.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/results", m.handleResults)
	mux.HandleFunc("DELETE /v1/jobs/{id}", m.handleCancel)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (m *jobManager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// sweep.Load applies the full spec contract: unknown fields, family
	// registry, measures, models, rates, trials — same as -spec files.
	spec, err := sweep.Load(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sj, err := m.submit(spec)
	if err == errTooManyJobs {
		httpError(w, http.StatusServiceUnavailable, "job store full: all %d held jobs are still queued or running; cancel one (DELETE /v1/jobs/{id}) or retry later", m.maxJobs)
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+sj.id)
	writeJSON(w, http.StatusCreated, sj.view())
}

func (m *jobManager) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := m.list()
	views := make([]jobView, len(jobs))
	for i, sj := range jobs {
		views[i] = sj.view()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (m *jobManager) handleGet(w http.ResponseWriter, r *http.Request) {
	sj, ok := m.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sj.view())
}

// handleCancel: DELETE on a running job cancels it and returns at once
// (the job object stays queryable so clients can watch the drain);
// DELETE on a still-queued job cancels it immediately — no waiting for
// pool admission — and the response already shows the cancelled
// terminal state; DELETE on a job already in a terminal state removes
// it from the store, freeing its result log — the explicit form of the
// eviction submit performs when the store fills.
func (m *jobManager) handleCancel(w http.ResponseWriter, r *http.Request) {
	sj, ok := m.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	v := sj.view()
	if v.Snapshot.State.Terminal() {
		m.remove(sj.id)
		v.Removed = true
		writeJSON(w, http.StatusOK, v)
		return
	}
	if sj.requestCancel() {
		// The job never reached a pool slot, so it terminates without
		// computing anything — await that (it is immediate) so the
		// response acknowledges the cancellation instead of racing it
		// with a stale "pending" snapshot.
		<-sj.job.Done()
	}
	writeJSON(w, http.StatusOK, sj.view())
}

// handleResults streams the job's JSONL live: records already produced
// flush immediately, later ones as the workers emit them, and the
// response ends when the job reaches a terminal state. ?from=K skips
// the first K records — the re-attach path for clients that lost a
// stream (the records are deterministic, so the spliced stream is
// byte-identical to an unbroken one).
func (m *jobManager) handleResults(w http.ResponseWriter, r *http.Request) {
	sj, ok := m.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	from := 0
	if tok := r.URL.Query().Get("from"); tok != "" {
		n, err := strconv.Atoi(tok)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad from=%q, want a cell index ≥ 0", tok)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	for i := from; ; i++ {
		line, ok := sj.log.next(r.Context(), i)
		if !ok {
			return
		}
		if _, err := w.Write(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
