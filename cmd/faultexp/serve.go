package main

// The serve and worker subcommands: one HTTP daemon (internal/fabric's
// Server) over the context-aware Job API, two roles. `serve` is the
// standalone service clients talk to directly; `worker` is the same
// surface enrolled in a fleet, driven by `faultexp coordinator`
// through the ?shard=i/m&skip=K query parameters on POST /v1/jobs.
// Either way the endpoints are:
//
//	POST   /v1/jobs               spec JSON → job id (queued into a bounded pool)
//	GET    /v1/jobs               all jobs with snapshots
//	GET    /v1/jobs/{id}          one job's snapshot
//	GET    /v1/jobs/{id}/results  streamed JSONL (?from=K skips the first K cells,
//	                              so a dropped client resumes where it left off)
//	DELETE /v1/jobs/{id}          graceful cancel (drains at a cell boundary)
//	GET    /healthz               build version, kernel-version stamp, capacity
//
// The results stream is byte-identical to `faultexp sweep -jsonl` for
// the same spec: both paths encode the same Result structs with the
// same json.Marshal. Determinism makes the service idempotent — a
// client that loses a stream re-requests with ?from= and the bytes
// line up exactly.

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"faultexp/internal/cache"
	"faultexp/internal/fabric"
	"faultexp/internal/sweep"
)

func cmdServe(ctx context.Context, args []string) error {
	return runJobDaemon(ctx, "serve", "127.0.0.1:8080", args)
}

func cmdWorker(ctx context.Context, args []string) error {
	return runJobDaemon(ctx, "worker", "127.0.0.1:8081", args)
}

// runJobDaemon is the shared serve/worker implementation; only the
// flag-set name, default port, and startup line differ.
func runJobDaemon(ctx context.Context, name, defaultAddr string, args []string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	addr := fs.String("addr", defaultAddr, "listen address (host:port)")
	maxActive := fs.Int("max-active", 2, "jobs executing concurrently; submissions beyond it queue as pending")
	maxJobs := fs.Int("max-jobs", 64, "jobs held in memory; when full, finished jobs are evicted oldest-first and POST returns 503 only if every held job is still active")
	maxResultBytes := fs.Int64("max-result-bytes", 64<<20, "per-job cap on retained result bytes; a job whose output would exceed it fails with a clear error (0 = unlimited)")
	cacheDir := fs.String("cache", "", "content-addressed result cache directory shared by every job: overlapping grids recompute nothing, and identical cells wanted by concurrent jobs are computed once (single-flight)")
	quiet := fs.Bool("quiet", false, "suppress the startup line on stderr")
	fs.Parse(args)
	if *maxActive < 1 || *maxJobs < 1 {
		return fmt.Errorf("%s: -max-active and -max-jobs must be ≥ 1", name)
	}
	if *maxResultBytes < 0 {
		return fmt.Errorf("%s: -max-result-bytes must be ≥ 0 (0 = unlimited)", name)
	}

	ctx, stop := signalContext(ctx)
	defer stop()

	cfg := fabric.Config{MaxActive: *maxActive, MaxJobs: *maxJobs, MaxResultBytes: *maxResultBytes}
	if *cacheDir != "" {
		rc, err := cache.Open(*cacheDir)
		if err != nil {
			return err
		}
		cfg.Cache, cfg.Flight = rc, cache.NewFlight()
	}
	mgr := fabric.NewServer(ctx, cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mgr.Handler()}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "%s: listening on http://%s (POST /v1/jobs, %d concurrent jobs, kernels %s)\n",
			name, ln.Addr(), *maxActive, sweep.KernelVersion)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful shutdown: cancel every job (each drains at a cell
		// boundary), then let in-flight responses finish streaming their
		// final records before the listener closes for good.
		mgr.CancelAll()
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		return srv.Shutdown(shCtx)
	}
}
