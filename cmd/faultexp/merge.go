package main

// The merge subcommand: reassemble the per-shard JSONL outputs of
// `faultexp sweep -shard i/m` runs into a single stream byte-identical
// to the unsharded run (and optionally re-emit it as long-format CSV).

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"faultexp/internal/sweep"
)

func cmdMerge(ctx context.Context, args []string) error {
	ctx, stop := signalContext(ctx)
	defer stop()
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	specFile := fs.String("spec", "", "JSON grid spec the shards were run with; verifies every record lands at its exact cell position")
	dir := fs.String("dir", "", "directory holding a complete shard-<i>-of-<m>.jsonl set (the durable job store layout) — alternative to listing the shard files")
	jsonlOut := fs.String("jsonl", "", `merged JSONL output path ("-" = stdout; default stdout when -csv is unset)`)
	csvOut := fs.String("csv", "", `merged CSV output path ("-" = stdout)`)
	quiet := fs.Bool("quiet", false, "suppress the summary line on stderr")
	fs.Parse(args)
	var spec *sweep.Spec
	if *specFile != "" {
		f, err := os.Open(*specFile)
		if err != nil {
			return err
		}
		spec, err = sweep.Load(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	shardPaths := fs.Args()
	if *dir != "" {
		if len(shardPaths) > 0 {
			return fmt.Errorf("merge: -dir and positional shard files are mutually exclusive")
		}
		// The discovery enforces a complete, single-split set in shard
		// order — and the naming matches what the coordinator's durable
		// job store writes, so `-dir store/job-N` merges a fabric job.
		paths, err := sweep.ShardFiles(*dir)
		if err != nil {
			return err
		}
		shardPaths = paths
	}
	if len(shardPaths) == 0 {
		return fmt.Errorf("usage: faultexp merge [-jsonl out.jsonl] [-csv out.csv] -dir jobdir | shard0.jsonl shard1.jsonl … (in -shard 0/m..m-1/m order)")
	}

	var readers []io.Reader
	for _, p := range shardPaths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		// SIGINT/SIGTERM aborts the merge at the next shard read instead
		// of grinding through the remaining gigabytes.
		readers = append(readers, ctxReader{ctx: ctx, r: f})
	}

	if *jsonlOut == "" && *csvOut == "" {
		*jsonlOut = "-"
	}
	open := func(path string) (io.Writer, func() error, error) {
		if path == "-" {
			return os.Stdout, func() error { return nil }, nil
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		return f, f.Close, nil
	}
	var closers []func() error
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	var jsonlW io.Writer
	if *jsonlOut != "" {
		w, cl, err := open(*jsonlOut)
		if err != nil {
			return err
		}
		closers = append(closers, cl)
		jsonlW = w
	}
	var csvW sweep.Writer
	if *csvOut != "" {
		w, cl, err := open(*csvOut)
		if err != nil {
			return err
		}
		closers = append(closers, cl)
		csvW = sweep.NewCSV(w)
	}

	n, err := sweep.MergeShards(readers, jsonlW, csvW, spec)
	if err != nil {
		return err
	}
	if !*quiet {
		hint := ""
		if spec == nil {
			// Without the spec, an equal-length subset or swap of the
			// shard files is undetectable — tell the user how to close
			// that gap.
			hint = " (pass -spec to verify each record's cell position)"
		}
		fmt.Fprintf(os.Stderr, "merge: %d records from %d shards%s\n", n, len(shardPaths), hint)
	}
	return nil
}
