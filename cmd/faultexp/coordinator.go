package main

// The coordinator subcommand: the fleet-facing daemon. It exposes the
// same /v1 job surface as serve, but executes each job by splitting
// the grid into -shard i/m slices and dispatching them to worker
// daemons (-workers), streaming back the merged interleave —
// byte-identical to a single-node run. Every job is durable: its spec
// and per-shard outputs live under -store, so a SIGKILLed coordinator
// restarts with nothing lost and every unfinished job resuming from
// its exact output prefix.

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"faultexp/internal/fabric"
	"faultexp/internal/sweep"
)

func cmdCoordinator(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("coordinator", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "listen address (host:port)")
	workers := fs.String("workers", "", "comma-separated worker addresses (host:port or URLs); health-checked, kernel-version-matched, and fed shards as capacity frees")
	storeDir := fs.String("store", "", "durable job store directory (required): per-job spec + append-only shard outputs, rebuilt on startup so a crash loses nothing")
	maxActive := fs.Int("max-active", 2, "jobs dispatching concurrently; submissions beyond it queue as pending")
	maxInflight := fs.Int("max-inflight", 1, "shards assigned to one worker at a time (fleet backpressure)")
	shards := fs.Int("shards", 0, "shards per job (0 = one per worker); more shards than workers lets slices reassign finer on failure")
	maxResultBytes := fs.Int64("max-result-bytes", 64<<20, "per-job cap on retained in-memory result bytes (0 = unlimited; durable files are never capped)")
	healthInterval := fs.Duration("health-interval", 2*time.Second, "worker health-check period; a worker failing its check has its in-flight shards reassigned")
	retryDelay := fs.Duration("retry-delay", 500*time.Millisecond, "pause before reassigning a failed shard attempt")
	quiet := fs.Bool("quiet", false, "suppress the startup line on stderr")
	fs.Parse(args)
	if *storeDir == "" {
		return fmt.Errorf("coordinator: -store DIR is required (the durable job store)")
	}
	if *maxActive < 1 || *maxInflight < 1 {
		return fmt.Errorf("coordinator: -max-active and -max-inflight must be ≥ 1")
	}
	var fleet []string
	for _, tok := range strings.Split(*workers, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			fleet = append(fleet, tok)
		}
	}

	ctx, stop := signalContext(ctx)
	defer stop()

	store, err := fabric.OpenStore(*storeDir)
	if err != nil {
		return err
	}
	co, err := fabric.NewCoordinator(ctx, fabric.CoordinatorConfig{
		Workers:        fleet,
		Store:          store,
		MaxActive:      *maxActive,
		MaxInflight:    *maxInflight,
		Shards:         *shards,
		MaxResultBytes: *maxResultBytes,
		HealthInterval: *healthInterval,
		RetryDelay:     *retryDelay,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: co.Handler()}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "coordinator: listening on http://%s (%d workers, store %s, kernels %s)\n",
			ln.Addr(), len(fleet), *storeDir, sweep.KernelVersion)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful shutdown stops dispatching but does NOT cancel jobs:
		// they are durable, and the next start resumes each one from its
		// exact output prefix. Only DELETE cancels durably.
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		return srv.Shutdown(shCtx)
	}
}
