package main

// The version subcommand (also reachable as `faultexp -version`):
// report what binary this is — module path and version, the VCS
// revision and commit time it was built from, and the toolchain — all
// read from the build info the Go linker embeds, so it needs no
// ldflags plumbing and works for `go install`, a local `go build`, and
// a test binary alike.

import (
	"fmt"
	"io"
	"runtime/debug"

	"faultexp/internal/sweep"
)

func cmdVersion(w io.Writer) error {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return fmt.Errorf("no build info embedded in this binary")
	}
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	fmt.Fprintf(w, "faultexp %s\n", version)
	fmt.Fprintf(w, "  module    %s\n", bi.Main.Path)
	fmt.Fprintf(w, "  go        %s\n", bi.GoVersion)
	// The measurement-kernel stamp namespaces the result cache and is
	// what the coordinator matches across a fleet — printing it here is
	// how an operator diagnoses kernel skew from the CLI.
	fmt.Fprintf(w, "  kernels   %s\n", sweep.KernelVersion)
	var rev, modified, vcsTime string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		case "vcs.time":
			vcsTime = s.Value
		}
	}
	if rev != "" {
		if modified == "true" {
			rev += " (modified)"
		}
		fmt.Fprintf(w, "  revision  %s\n", rev)
	}
	if vcsTime != "" {
		fmt.Fprintf(w, "  built     %s\n", vcsTime)
	}
	return nil
}
