package main

// End-to-end CLI test of the distributed fabric: two `faultexp worker`
// daemons and a `faultexp coordinator` run in-process, a job submitted
// over HTTP streams back the checked-in unsharded golden bytes, and a
// coordinator restart over the same store serves the finished job from
// its durable files alone — no fleet required.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"faultexp/internal/sweep"
)

// freeAddr reserves an ephemeral port and releases it for a daemon to
// bind. The gap is a standard, tiny race; tests retry nothing because
// the OS does not reissue a just-closed port under normal churn.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthz(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never answered /healthz: %v", base, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestWorkerCoordinatorCLI(t *testing.T) {
	golden := readFile(t, filepath.Join("testdata", "sweep_golden.jsonl"))
	storeDir := t.TempDir()

	fleetCtx, stopFleet := context.WithCancel(context.Background())
	defer stopFleet()
	var workerAddrs []string
	for i := 0; i < 2; i++ {
		addr := freeAddr(t)
		workerAddrs = append(workerAddrs, addr)
		go cmdWorker(fleetCtx, []string{"-addr", addr, "-quiet"})
	}

	coordAddr := freeAddr(t)
	coordCtx, stopCoord := context.WithCancel(context.Background())
	coordDone := make(chan error, 1)
	coordArgs := []string{
		"-addr", coordAddr,
		"-workers", strings.Join(workerAddrs, ","),
		"-store", storeDir,
		"-health-interval", "100ms",
		"-retry-delay", "50ms",
		"-quiet",
	}
	go func() { coordDone <- cmdCoordinator(coordCtx, coordArgs) }()
	base := "http://" + coordAddr
	waitHealthz(t, base)

	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(serveSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, body)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(base + "/v1/jobs/" + v.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got, golden) {
		t.Errorf("fleet results differ from the unsharded golden (%d vs %d bytes)", len(got), len(golden))
	}

	// The durable store is a merge -dir input from the moment the job
	// finishes: the CLI merge of the job directory is the golden too.
	merged := filepath.Join(t.TempDir(), "merged.jsonl")
	spec := filepath.Join(t.TempDir(), "grid.json")
	writeTestFile(t, spec, serveSpecJSON)
	if err := cmdMerge(context.Background(), []string{"-quiet", "-spec", spec,
		"-dir", filepath.Join(storeDir, v.ID), "-jsonl", merged}); err != nil {
		t.Fatalf("cmdMerge -dir on the job store: %v", err)
	}
	if got := readFile(t, merged); !bytes.Equal(got, golden) {
		t.Errorf("merge -dir of the job store differs from golden")
	}

	// Restart the coordinator over the same store with NO workers: the
	// finished job must come back done and stream the same bytes from
	// its durable shard files alone.
	stopCoord()
	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("coordinator shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator never shut down")
	}
	coordAddr2 := freeAddr(t)
	coordCtx2, stopCoord2 := context.WithCancel(context.Background())
	defer stopCoord2()
	go cmdCoordinator(coordCtx2, []string{
		"-addr", coordAddr2, "-store", storeDir, "-quiet"})
	base2 := "http://" + coordAddr2
	waitHealthz(t, base2)

	resp, err = http.Get(base2 + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		Snapshot sweep.Snapshot `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.Snapshot.State != sweep.JobDone {
		t.Fatalf("restarted coordinator shows job %s", view.Snapshot.State)
	}
	resp, err = http.Get(base2 + "/v1/jobs/" + v.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got2, golden) {
		t.Error("restarted coordinator streams different bytes")
	}
}

func TestCoordinatorRequiresStore(t *testing.T) {
	err := cmdCoordinator(context.Background(), []string{"-addr", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("coordinator without -store: %v", err)
	}
}

func writeTestFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
