package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"faultexp/internal/sweep"
)

// goldenArgs is the grid the golden files were generated with (3
// families × 4 rates, two measures). Worker count varies per invocation
// below — the files must match regardless.
func goldenArgs(dir string, workers string) []string {
	return []string{
		"-families", "mesh:4x4,torus:4x4,hypercube:4",
		"-measures", "gamma,percolation",
		"-model", "iid-node",
		"-rates", "0,0.25,0.5,0.75",
		"-trials", "2",
		"-seed", "42",
		"-workers", workers,
		"-quiet",
		"-jsonl", filepath.Join(dir, "out.jsonl"),
		"-csv", filepath.Join(dir, "out.csv"),
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepGolden runs the full CLI path (flag parsing → spec → engine →
// writers) against checked-in golden output, at several worker counts.
func TestSweepGolden(t *testing.T) {
	wantJSONL := readFile(t, filepath.Join("testdata", "sweep_golden.jsonl"))
	wantCSV := readFile(t, filepath.Join("testdata", "sweep_golden.csv"))
	for _, workers := range []string{"1", "3", "8"} {
		dir := t.TempDir()
		if err := cmdSweep(context.Background(), goldenArgs(dir, workers)); err != nil {
			t.Fatalf("cmdSweep(workers=%s): %v", workers, err)
		}
		if got := readFile(t, filepath.Join(dir, "out.jsonl")); !bytes.Equal(got, wantJSONL) {
			t.Errorf("workers=%s: JSONL differs from golden:\n--- got ---\n%s", workers, got)
		}
		if got := readFile(t, filepath.Join(dir, "out.csv")); !bytes.Equal(got, wantCSV) {
			t.Errorf("workers=%s: CSV differs from golden", workers)
		}
	}

	// The golden files themselves must be valid JSONL / CSV.
	for i, ln := range bytes.Split(bytes.TrimSpace(wantJSONL), []byte("\n")) {
		var r sweep.Result
		if err := json.Unmarshal(ln, &r); err != nil {
			t.Fatalf("golden JSONL line %d invalid: %v", i+1, err)
		}
		if r.Err != "" {
			t.Fatalf("golden JSONL line %d carries an error: %s", i+1, r.Err)
		}
	}
	rows, err := csv.NewReader(bytes.NewReader(wantCSV)).ReadAll()
	if err != nil {
		t.Fatalf("golden CSV invalid: %v", err)
	}
	if len(rows) < 2 || len(rows[0]) != 11 {
		t.Fatalf("golden CSV shape: %d rows × %d cols", len(rows), len(rows[0]))
	}
}

// TestSweepSpecFile checks that the same grid expressed as a JSON spec
// file produces byte-identical output to the flag form.
func TestSweepSpecFile(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	specJSON := `{
	  "families": [
	    {"family": "mesh", "size": "4x4"},
	    {"family": "torus", "size": "4x4"},
	    {"family": "hypercube", "size": "4"}
	  ],
	  "measures": ["gamma", "percolation"],
	  "model": "iid-node",
	  "rates": [0, 0.25, 0.5, 0.75],
	  "trials": 2,
	  "seed": 42
	}`
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-spec", specPath,
		"-workers", "2",
		"-quiet",
		"-jsonl", filepath.Join(dir, "out.jsonl"),
		"-csv", filepath.Join(dir, "out.csv"),
	}
	if err := cmdSweep(context.Background(), args); err != nil {
		t.Fatalf("cmdSweep(-spec): %v", err)
	}
	wantJSONL := readFile(t, filepath.Join("testdata", "sweep_golden.jsonl"))
	if got := readFile(t, filepath.Join(dir, "out.jsonl")); !bytes.Equal(got, wantJSONL) {
		t.Errorf("-spec JSONL differs from golden")
	}
	wantCSV := readFile(t, filepath.Join("testdata", "sweep_golden.csv"))
	if got := readFile(t, filepath.Join(dir, "out.csv")); !bytes.Equal(got, wantCSV) {
		t.Errorf("-spec CSV differs from golden")
	}
}

// TestSweepShardMergeCLI drives the full sharded workflow through the
// CLI: the golden grid run as 3 shards plus `faultexp merge` must
// reproduce the checked-in unsharded golden files byte-for-byte, for
// both JSONL and CSV.
func TestSweepShardMergeCLI(t *testing.T) {
	dir := t.TempDir()
	shardPaths := make([]string, 3)
	for i := range shardPaths {
		shardPaths[i] = filepath.Join(dir, "s"+string(rune('0'+i))+".jsonl")
		args := []string{
			"-families", "mesh:4x4,torus:4x4,hypercube:4",
			"-measures", "gamma,percolation",
			"-model", "iid-node",
			"-rates", "0,0.25,0.5,0.75",
			"-trials", "2",
			"-seed", "42",
			"-quiet",
			"-shard", string(rune('0'+i)) + "/3",
			"-jsonl", shardPaths[i],
		}
		if err := cmdSweep(context.Background(), args); err != nil {
			t.Fatalf("cmdSweep(shard %d/3): %v", i, err)
		}
	}
	mergedJSONL := filepath.Join(dir, "merged.jsonl")
	mergedCSV := filepath.Join(dir, "merged.csv")
	margs := append([]string{"-quiet", "-jsonl", mergedJSONL, "-csv", mergedCSV}, shardPaths...)
	if err := cmdMerge(context.Background(), margs); err != nil {
		t.Fatalf("cmdMerge: %v", err)
	}
	if got, want := readFile(t, mergedJSONL), readFile(t, filepath.Join("testdata", "sweep_golden.jsonl")); !bytes.Equal(got, want) {
		t.Errorf("merged JSONL differs from unsharded golden:\n--- got ---\n%s", got)
	}
	if got, want := readFile(t, mergedCSV), readFile(t, filepath.Join("testdata", "sweep_golden.csv")); !bytes.Equal(got, want) {
		t.Errorf("merged CSV differs from unsharded golden")
	}
	// Merge refuses a wrong shard count / order profile when lengths
	// make it detectable, and always refuses zero shard files.
	if err := cmdMerge(context.Background(), []string{"-quiet", "-jsonl", filepath.Join(dir, "x.jsonl")}); err == nil {
		t.Error("cmdMerge with no shard files succeeded")
	}
	// With -spec, a wrong shard order is caught even when the length
	// profile is inconclusive (24 cells split 3 ways is 8/8/8).
	specPath := filepath.Join(dir, "grid.json")
	specJSON := `{"families":[{"family":"mesh","size":"4x4"},{"family":"torus","size":"4x4"},
	  {"family":"hypercube","size":"4"}],"measures":["gamma","percolation"],
	  "model":"iid-node","rates":[0,0.25,0.5,0.75],"trials":2,"seed":42}`
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	goodOrder := append([]string{"-quiet", "-spec", specPath, "-jsonl", filepath.Join(dir, "v.jsonl")}, shardPaths...)
	if err := cmdMerge(context.Background(), goodOrder); err != nil {
		t.Errorf("cmdMerge(-spec, correct order): %v", err)
	}
	badOrder := []string{"-quiet", "-spec", specPath, "-jsonl", filepath.Join(dir, "b.jsonl"),
		shardPaths[1], shardPaths[0], shardPaths[2]}
	if err := cmdMerge(context.Background(), badOrder); err == nil {
		t.Error("cmdMerge(-spec) accepted equal-length shards in the wrong order")
	}
}

// TestSweepMultiModelCLI checks -models expands the model axis and that
// -model/-models conflict is rejected.
func TestSweepMultiModelCLI(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	args := []string{
		"-families", "torus:4x4",
		"-measures", "gamma",
		"-models", "iid-node,iid-edge",
		"-rates", "0,0.5",
		"-trials", "1",
		"-seed", "1",
		"-quiet",
		"-jsonl", out,
	}
	if err := cmdSweep(context.Background(), args); err != nil {
		t.Fatalf("cmdSweep(-models): %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(readFile(t, out)), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("got %d records, want 4 (1 family × 1 measure × 2 models × 2 rates)", len(lines))
	}
	models := map[string]int{}
	for _, ln := range lines {
		var r sweep.Result
		if err := json.Unmarshal(ln, &r); err != nil {
			t.Fatal(err)
		}
		models[r.Model]++
	}
	if models["iid-node"] != 2 || models["iid-edge"] != 2 {
		t.Errorf("model counts %v, want 2 each", models)
	}
	conflict := []string{"-families", "torus:4x4", "-rates", "0", "-model", "iid-node", "-models", "iid-edge", "-quiet", "-jsonl", filepath.Join(dir, "c.jsonl")}
	if err := cmdSweep(context.Background(), conflict); err == nil {
		t.Error("cmdSweep accepted both -model and -models")
	}
}

// TestSweepFlagErrors pins the user-facing failure modes.
func TestSweepFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-rates", "0,0.1", "-quiet"},                                         // no families
		{"-families", "torus:4x4", "-quiet"},                                  // no rates
		{"-families", "nosuch:4x4", "-rates", "0", "-quiet"},                  // unknown family
		{"-families", "torus:4x4", "-rates", "2", "-quiet"},                   // rate out of range
		{"-families", "torus:4x4", "-rates", "0", "-measures", "x", "-quiet"}, // unknown measure
		{"-spec", filepath.Join(t.TempDir(), "missing.json"), "-quiet"},       // missing spec file
		{"-families", "torus:4x4:3", "-rates", "0", "-quiet"},                 // :k on a family without k
		{"-families", "torus:4x4", "-rates", "0", "-models", "x", "-quiet"},   // unknown model
		{"-families", "torus:4x4", "-rates", "0", "-shard", "3/3", "-quiet"},  // shard out of range
		{"-families", "torus:4x4", "-rates", "0", "-shard", "1of3", "-quiet"}, // malformed shard
		{"-families", "torus:4x4", "-rates", "0", "-workers", "-1", "-quiet"}, // negative workers
	}
	for _, args := range cases {
		args = append(args, "-jsonl", filepath.Join(t.TempDir(), "out.jsonl"))
		if err := cmdSweep(context.Background(), args); err == nil {
			t.Errorf("cmdSweep(%v) succeeded, want error", args)
		}
	}
}

// resumeGridArgs is a small grid used by the resume/dry-run CLI tests.
func resumeGridArgs(extra ...string) []string {
	base := []string{
		"-families", "torus:4x4,hypercube:4",
		"-measures", "gamma",
		"-model", "iid-node",
		"-rates", "0,0.25,0.5",
		"-trials", "2",
		"-seed", "11",
		"-quiet",
	}
	return append(base, extra...)
}

// TestSweepResumeCLI drives the full resume workflow: a run killed at a
// cell boundary (with a partial trailing record) is resumed and the
// result is byte-identical to the uninterrupted run.
func TestSweepResumeCLI(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	if err := cmdSweep(context.Background(), resumeGridArgs("-jsonl", full)); err != nil {
		t.Fatal(err)
	}
	want := readFile(t, full)
	lines := bytes.SplitAfter(want, []byte("\n"))
	for _, cut := range []struct {
		name    string
		content []byte
	}{
		{"empty", nil},
		{"two-cells", bytes.Join(lines[:2], nil)},
		{"partial-line", append(append([]byte{}, bytes.Join(lines[:3], nil)...), lines[3][:20]...)},
		{"complete", want},
	} {
		t.Run(cut.name, func(t *testing.T) {
			resumed := filepath.Join(t.TempDir(), "out.jsonl")
			if cut.content != nil {
				if err := os.WriteFile(resumed, cut.content, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := cmdSweep(context.Background(), resumeGridArgs("-resume", resumed)); err != nil {
				t.Fatalf("resume: %v", err)
			}
			if got := readFile(t, resumed); !bytes.Equal(got, want) {
				t.Errorf("resumed output differs from uninterrupted run:\n--- got ---\n%s", got)
			}
		})
	}
}

// TestSweepResumeShardCLI: resume composes with -shard — each shard's
// file resumes independently and the merge still reproduces the
// unsharded bytes.
func TestSweepResumeShardCLI(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	if err := cmdSweep(context.Background(), resumeGridArgs("-jsonl", full)); err != nil {
		t.Fatal(err)
	}
	shardPaths := make([]string, 2)
	for i := range shardPaths {
		shardPaths[i] = filepath.Join(dir, "s"+string(rune('0'+i))+".jsonl")
		sh := string(rune('0'+i)) + "/2"
		// First pass: run the shard fully, then truncate to one record.
		if err := cmdSweep(context.Background(), resumeGridArgs("-shard", sh, "-jsonl", shardPaths[i])); err != nil {
			t.Fatal(err)
		}
		b := readFile(t, shardPaths[i])
		cut := bytes.SplitAfter(b, []byte("\n"))[0]
		if err := os.WriteFile(shardPaths[i], cut, 0o644); err != nil {
			t.Fatal(err)
		}
		// Resume the shard.
		if err := cmdSweep(context.Background(), resumeGridArgs("-shard", sh, "-resume", shardPaths[i])); err != nil {
			t.Fatalf("resume shard %d: %v", i, err)
		}
	}
	merged := filepath.Join(dir, "merged.jsonl")
	if err := cmdMerge(context.Background(), append([]string{"-quiet", "-jsonl", merged}, shardPaths...)); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, merged); !bytes.Equal(got, readFile(t, full)) {
		t.Errorf("merged resumed shards differ from unsharded run")
	}
}

// TestSweepResumeRefusals pins the user-facing refusal modes.
func TestSweepResumeRefusals(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	if err := cmdSweep(context.Background(), resumeGridArgs("-jsonl", out)); err != nil {
		t.Fatal(err)
	}
	// A different grid seed must refuse.
	mismatch := []string{
		"-families", "torus:4x4,hypercube:4", "-measures", "gamma",
		"-model", "iid-node", "-rates", "0,0.25,0.5", "-trials", "2",
		"-seed", "999", "-quiet", "-resume", out,
	}
	if err := cmdSweep(context.Background(), mismatch); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Errorf("mismatched spec resume = %v, want refusal", err)
	}
	// -csv and a conflicting -jsonl are rejected up front.
	if err := cmdSweep(context.Background(), resumeGridArgs("-resume", out, "-csv", filepath.Join(dir, "x.csv"))); err == nil {
		t.Error("-resume with -csv accepted")
	}
	if err := cmdSweep(context.Background(), resumeGridArgs("-resume", out, "-jsonl", filepath.Join(dir, "other.jsonl"))); err == nil {
		t.Error("-resume with conflicting -jsonl accepted")
	}
	// Interior corruption refuses.
	corrupt := filepath.Join(dir, "corrupt.jsonl")
	if err := os.WriteFile(corrupt, []byte("{junk}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep(context.Background(), resumeGridArgs("-resume", corrupt)); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("corrupt resume = %v, want malformed error", err)
	}
}

// TestSweepDryRun pins the -dry-run plan output and that it executes
// nothing.
func TestSweepDryRun(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := cmdSweep(context.Background(), resumeGridArgs("-shard", "0/2", "-dry-run"))
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("dry run: %v", runErr)
	}
	s := string(out)
	for _, want := range []string{
		"grid expands to 6 cells (12 trials total)",
		"shard 0/2 runs 3 cells (6 trials)",
		"families to build (2):",
		"torus:4x4",
		"hypercube:4",
		"peak~",
		"cost~",
		"fits",
		"measures (1): gamma",
		"models (1): iid-node",
		"rates (3): 0, 0.25, 0.5",
		"trials/cell: 2  seed: 11",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("dry-run output missing %q:\n%s", want, s)
		}
	}
	// A dry run with an invalid grid still fails validation.
	if err := cmdSweep(context.Background(), []string{"-families", "torus:4x4", "-rates", "0", "-measures", "nope", "-dry-run", "-quiet"}); err == nil {
		t.Error("dry run validated an unknown measure")
	}
}

// TestSweepTrialParallelCLI drives the -trial-parallel / -trial-block
// flags end to end: byte identity across worker counts, the trial_block
// field on every record, composition with -spec, the dry-run plan line,
// and the flag-validation refusals.
func TestSweepTrialParallelCLI(t *testing.T) {
	tpArgs := func(dir, workers string) []string {
		return []string{
			"-families", "torus:4x4,hypercube:4",
			"-measures", "gamma",
			"-model", "iid-node",
			"-rates", "0,0.25",
			"-trials", "10",
			"-seed", "11",
			"-trial-parallel",
			"-trial-block", "3",
			"-workers", workers,
			"-quiet",
			"-jsonl", filepath.Join(dir, "out.jsonl"),
		}
	}
	refDir := t.TempDir()
	if err := cmdSweep(context.Background(), tpArgs(refDir, "1")); err != nil {
		t.Fatal(err)
	}
	ref := readFile(t, filepath.Join(refDir, "out.jsonl"))
	for _, workers := range []string{"2", "8"} {
		dir := t.TempDir()
		if err := cmdSweep(context.Background(), tpArgs(dir, workers)); err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		if got := readFile(t, filepath.Join(dir, "out.jsonl")); !bytes.Equal(got, ref) {
			t.Errorf("workers=%s: trial-parallel output differs from workers=1", workers)
		}
	}
	for i, ln := range bytes.Split(bytes.TrimSpace(ref), []byte("\n")) {
		var r sweep.Result
		if err := json.Unmarshal(ln, &r); err != nil {
			t.Fatal(err)
		}
		if r.TrialBlock != 3 {
			t.Errorf("record %d trial_block = %d, want 3", i, r.TrialBlock)
		}
	}

	// The flags compose with -spec (override-then-revalidate), and the
	// result matches the flag form byte for byte.
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.json")
	specJSON := `{
	  "families": [
	    {"family": "torus", "size": "4x4"},
	    {"family": "hypercube", "size": "4"}
	  ],
	  "measures": ["gamma"],
	  "model": "iid-node",
	  "rates": [0, 0.25],
	  "trials": 10,
	  "seed": 11
	}`
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep(context.Background(), []string{
		"-spec", specPath, "-trial-parallel", "-trial-block", "3",
		"-workers", "4", "-quiet", "-jsonl", filepath.Join(dir, "out.jsonl"),
	}); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, filepath.Join(dir, "out.jsonl")); !bytes.Equal(got, ref) {
		t.Error("-spec + -trial-parallel output differs from the flag form")
	}

	// Dry run announces the block partition.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := cmdSweep(context.Background(), append(tpArgs(t.TempDir(), "1"), "-dry-run"))
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("dry run: %v", runErr)
	}
	if !strings.Contains(string(out), "trial-parallel: blocks of 3 trials") {
		t.Errorf("dry-run output missing the trial-parallel plan line:\n%s", out)
	}

	// Refusals: -trial-block without -trial-parallel, coupled rate mode,
	// and a cell-grained measure.
	for _, bad := range [][]string{
		{"-families", "torus:4x4", "-rates", "0", "-trial-block", "4", "-quiet"},
		{"-families", "torus:4x4", "-rates", "0,0.1", "-measures", "percolation", "-rate-mode", "coupled", "-trial-parallel", "-quiet"},
		{"-families", "torus:4x4", "-rates", "0", "-measures", "adversarial", "-trial-parallel", "-quiet"},
	} {
		bad = append(bad, "-jsonl", filepath.Join(t.TempDir(), "out.jsonl"))
		if err := cmdSweep(context.Background(), bad); err == nil {
			t.Errorf("cmdSweep(%v) succeeded, want error", bad)
		}
	}
}

// TestSweepCacheCLI drives -cache end to end: a cold run fills the
// cache and matches the uncached golden bytes, a warm run answers
// entirely from it (byte-identical again), and -dry-run -cache prints
// the per-cell cached column with the summary count line.
func TestSweepCacheCLI(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")

	golden := filepath.Join(dir, "golden.jsonl")
	if err := cmdSweep(context.Background(), resumeGridArgs("-jsonl", golden)); err != nil {
		t.Fatal(err)
	}
	want := readFile(t, golden)

	cold := filepath.Join(dir, "cold.jsonl")
	if err := cmdSweep(context.Background(), resumeGridArgs("-jsonl", cold, "-cache", cacheDir)); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, cold); !bytes.Equal(got, want) {
		t.Errorf("cold cached run differs from uncached run:\n--- got ---\n%s", got)
	}

	warm := filepath.Join(dir, "warm.jsonl")
	if err := cmdSweep(context.Background(), resumeGridArgs("-jsonl", warm, "-cache", cacheDir)); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, warm); !bytes.Equal(got, want) {
		t.Errorf("warm cached run differs from cold run:\n--- got ---\n%s", got)
	}

	// Dry-run planning view: per-cell cached column + summary line.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := cmdSweep(context.Background(), resumeGridArgs("-dry-run", "-cache", cacheDir))
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("dry run with cache: %v", runErr)
	}
	s := string(out)
	for _, wantLine := range []string{
		"cells (6):",
		"cached",
		"6/6 cells cached",
	} {
		if !strings.Contains(s, wantLine) {
			t.Errorf("cached dry-run output missing %q:\n%s", wantLine, s)
		}
	}

	// A fresh cache dir: the same plan reports zero cached cells.
	r2, w2, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w2
	runErr = cmdSweep(context.Background(), resumeGridArgs("-dry-run", "-cache", filepath.Join(dir, "empty-cache")))
	w2.Close()
	os.Stdout = old
	out2, _ := io.ReadAll(r2)
	if runErr != nil {
		t.Fatalf("dry run with empty cache: %v", runErr)
	}
	if !strings.Contains(string(out2), "0/6 cells cached") {
		t.Errorf("empty-cache dry run missing \"0/6 cells cached\":\n%s", out2)
	}
}

// TestMergeDirCLI: `faultexp merge -dir` discovers a complete
// shard-<i>-of-<m>.jsonl set — the durable job store layout — and
// merges it to the unsharded golden bytes without listing files.
func TestMergeDirCLI(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		args := []string{
			"-families", "mesh:4x4,torus:4x4,hypercube:4",
			"-measures", "gamma,percolation",
			"-model", "iid-node",
			"-rates", "0,0.25,0.5,0.75",
			"-trials", "2",
			"-seed", "42",
			"-quiet",
			"-shard", fmt.Sprintf("%d/3", i),
			"-jsonl", filepath.Join(dir, fmt.Sprintf("shard-%d-of-3.jsonl", i)),
		}
		if err := cmdSweep(context.Background(), args); err != nil {
			t.Fatalf("cmdSweep(shard %d/3): %v", i, err)
		}
	}
	// Job-store clutter must not confuse the discovery.
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	merged := filepath.Join(dir, "merged.jsonl")
	if err := cmdMerge(context.Background(), []string{"-quiet", "-dir", dir, "-jsonl", merged}); err != nil {
		t.Fatalf("cmdMerge -dir: %v", err)
	}
	if got, want := readFile(t, merged), readFile(t, filepath.Join("testdata", "sweep_golden.jsonl")); !bytes.Equal(got, want) {
		t.Errorf("merge -dir differs from unsharded golden")
	}
	// -dir and positional shard files are mutually exclusive.
	if err := cmdMerge(context.Background(), []string{"-quiet", "-dir", dir,
		filepath.Join(dir, "shard-0-of-3.jsonl")}); err == nil {
		t.Error("cmdMerge accepted -dir plus positional shard files")
	}
	// An incomplete set is refused, not silently part-merged.
	if err := os.Remove(filepath.Join(dir, "shard-1-of-3.jsonl")); err != nil {
		t.Fatal(err)
	}
	if err := cmdMerge(context.Background(), []string{"-quiet", "-dir", dir, "-jsonl", filepath.Join(dir, "x.jsonl")}); err == nil {
		t.Error("cmdMerge -dir accepted an incomplete shard set")
	}
}
