package main

// The sweep subcommand: run a declarative parameter grid (graph family ×
// fault model × fault rate × trials) and stream results as JSONL and/or
// CSV. The grid comes either from flags or from a JSON spec file; output
// is byte-identical for any -workers value (see internal/sweep).
//
// Execution rides the context-aware Job API: SIGINT/SIGTERM cancels the
// job's context, the pool drains at a cell boundary, the writer is
// flushed, and the command exits non-zero with a "resumable at cell K"
// message — the flushed JSONL prefix picks up with -resume, byte-
// identical to a run that was never interrupted.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"faultexp/internal/cache"
	"faultexp/internal/sweep"
)

// sweepCellHook, when non-nil, observes every emitted cell (even under
// -quiet). Tests use it to fire a SIGINT at a deterministic point
// mid-run.
var sweepCellHook func(done, total int)

func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	specFile := fs.String("spec", "", "JSON grid spec file (overrides the grid flags)")
	families := fs.String("families", "", "comma list of family:size[:k], e.g. torus:8x8,hypercube:6,smallworld:256x4:25")
	measures := fs.String("measures", "gamma", "comma list of measures: "+strings.Join(sweep.Measures(), "|"))
	model := fs.String("model", "", "single fault model (legacy form of -models)")
	models := fs.String("models", "", "comma list of fault models: "+strings.Join(sweep.Models(), "|")+" (default "+sweep.ModelIIDNode+")")
	rates := fs.String("rates", "", "comma list of fault rates in [0,1], e.g. 0,0.02,0.05,0.1")
	trials := fs.Int("trials", 3, "Monte-Carlo trials per cell")
	rateMode := fs.String("rate-mode", "", "rate-axis sampling: "+sweep.RateModeIndependent+" (default) or "+sweep.RateModeCoupled+" (one draw per element serves every rate; iid models and coupled-capable measures only)")
	trialParallel := fs.Bool("trial-parallel", false, "split each cell's trial loop into blocks and run blocks on the worker pool (trial-grained measures only; output is byte-identical across -workers but differs from serial mode in the last ulp)")
	trialBlock := fs.Int("trial-block", 0, "trials per block under -trial-parallel (0 = default "+strconv.Itoa(sweep.DefaultTrialBlock)+"); the block size is part of the output's byte contract")
	precision := fs.String("precision", "", `measurement tier: "exact" (default) or "sampled:k" (k-sample kernels with error bars and raised size caps; sampled-capable measures: `+strings.Join(sweep.SampledMeasures(), ", ")+`)`)
	seed := fs.Uint64("seed", 1, "grid seed (per-cell seeds are hash-split from it)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); does not affect output bytes")
	shard := fs.String("shard", "", `run only shard i of m ("i/m", 0-based); reassemble with 'faultexp merge'`)
	jsonlOut := fs.String("jsonl", "", `JSONL output path ("-" = stdout; default stdout when -csv is unset)`)
	csvOut := fs.String("csv", "", `CSV output path ("-" = stdout)`)
	resume := fs.String("resume", "", "resume an interrupted run: verify this JSONL output against the grid and append only the missing cells (JSONL only; composes with -shard)")
	cacheDir := fs.String("cache", "", "content-addressed result cache directory: cells already computed under identical parameters (and kernel version) emit their stored records without building a graph or running a trial; misses write back after computing (composes with -resume and -shard; output bytes are identical either way)")
	dryRun := fs.Bool("dry-run", false, "validate the spec and print the expanded cell/shard plan without executing")
	quiet := fs.Bool("quiet", false, "suppress the progress line on stderr")
	fs.Parse(args)

	spec, err := sweepSpecFromFlags(*specFile, *families, *measures, *model, *models, *rates, *rateMode, *precision, *trials, *seed, *trialParallel, *trialBlock)
	if err != nil {
		return err
	}
	var sh sweep.Shard
	if *shard != "" {
		if sh, err = sweep.ParseShard(*shard); err != nil {
			return err
		}
	}
	var rcache *cache.Cache
	if *cacheDir != "" {
		if rcache, err = cache.Open(*cacheDir); err != nil {
			return err
		}
	}
	if *dryRun {
		return printSweepPlan(spec, sh, rcache)
	}

	skip := 0
	var resumeFile *os.File
	if *resume != "" {
		if *csvOut != "" {
			return fmt.Errorf("-resume supports JSONL output only (re-derive CSV from the JSONL, e.g. with 'faultexp agg' or 'faultexp merge')")
		}
		if *jsonlOut != "" && *jsonlOut != *resume {
			return fmt.Errorf("-jsonl %q conflicts with -resume %q (resume appends to the resumed file)", *jsonlOut, *resume)
		}
		cells := spec.ShardCells(sh)
		resumeFile, err = os.OpenFile(*resume, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		st, err := sweep.ScanResume(resumeFile, cells)
		if err != nil {
			resumeFile.Close()
			return err
		}
		// Drop any mid-write partial record and position for append.
		if err := resumeFile.Truncate(st.Offset); err != nil {
			resumeFile.Close()
			return err
		}
		if _, err := resumeFile.Seek(st.Offset, io.SeekStart); err != nil {
			resumeFile.Close()
			return err
		}
		skip = st.Done
		if !*quiet {
			note := ""
			if st.Truncated {
				note = " (dropped a partial trailing record)"
			}
			fmt.Fprintf(os.Stderr, "resume: %d of %d cells already complete%s\n", st.Done, len(cells), note)
		}
	}

	// Default destination: JSONL on stdout.
	if *jsonlOut == "" && *csvOut == "" {
		*jsonlOut = "-"
	}
	var writers sweep.MultiWriter
	open := func(path string) (io.Writer, func() error, error) {
		if path == "-" {
			return os.Stdout, func() error { return nil }, nil
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		return f, f.Close, nil
	}
	var closers []func() error
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	switch {
	case resumeFile != nil:
		closers = append(closers, resumeFile.Close)
		writers = append(writers, sweep.NewJSONL(resumeFile))
	default:
		if *jsonlOut != "" {
			w, cl, err := open(*jsonlOut)
			if err != nil {
				return err
			}
			closers = append(closers, cl)
			writers = append(writers, sweep.NewJSONL(w))
		}
		if *csvOut != "" {
			w, cl, err := open(*csvOut)
			if err != nil {
				return err
			}
			closers = append(closers, cl)
			writers = append(writers, sweep.NewCSV(w))
		}
	}

	prefix := "sweep"
	if sh.Enabled() {
		prefix = "sweep[" + sh.String() + "]"
	}
	progress := func(done, total int) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells", prefix, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
		if sweepCellHook != nil {
			sweepCellHook(done, total)
		}
	}

	// SIGINT/SIGTERM cancels the job's context; the pool drains at a
	// cell boundary and the flushed JSONL prefix remains resumable.
	ctx, stop := signalContext(ctx)
	defer stop()

	job, err := sweep.NewJob(spec,
		sweep.WithWriter(writers),
		sweep.WithWorkers(*workers),
		sweep.WithShard(sh),
		sweep.WithSkipCells(skip),
		sweep.WithProgress(progress),
		sweep.WithCache(rcache),
	)
	if err != nil {
		return err
	}
	if err := job.Start(ctx); err != nil {
		return err
	}
	sum, err := job.Wait()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// The run was interrupted, not broken: report exactly where
			// the durable output stands and how to pick it up.
			done, total := skip+sum.Cells, skip+job.Cells()
			if !*quiet {
				fmt.Fprintln(os.Stderr)
			}
			resumePath := ""
			switch {
			case resumeFile != nil:
				resumePath = *resume
			case *jsonlOut != "" && *jsonlOut != "-":
				resumePath = *jsonlOut
			}
			if resumePath != "" {
				return fmt.Errorf("interrupted: %d of %d cells complete, resumable at cell %d — rerun with -resume %s",
					done, total, done, resumePath)
			}
			return fmt.Errorf("interrupted: %d of %d cells complete, resumable at cell %d (JSONL to a file enables -resume)",
				done, total, done)
		}
		return err
	}
	if rcache != nil && !*quiet {
		snap := job.Snapshot()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses\n", snap.CacheHits, snap.CacheMisses)
	}
	if sum.Errors > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d of %d cells reported errors (see the err field)\n", sum.Errors, sum.Cells)
	}
	return nil
}

// printSweepPlan renders the -dry-run view: what the grid expands to
// and what this (possibly sharded) invocation would execute — without
// building a single graph. With -cache it additionally probes every
// cell and prints which ones a real run would emit from the cache.
func printSweepPlan(spec *sweep.Spec, sh sweep.Shard, rcache *cache.Cache) error {
	p, err := spec.Plan(sh)
	if err != nil {
		return err
	}
	fmt.Printf("dry run: grid expands to %d cells (%d trials total)\n", p.GridCells, p.GridCells*p.Trials)
	if sh.Enabled() {
		fmt.Printf("shard %s runs %d cells (%d trials)\n", sh, p.RunCells, p.RunTrials)
	}
	rateToks := make([]string, len(p.Rates))
	for i, r := range p.Rates {
		rateToks[i] = strconv.FormatFloat(r, 'g', -1, 64)
	}
	if p.Precision.Sampled {
		fmt.Printf("precision: %s (sampled kernels, raised size caps)\n", p.Precision)
	}
	if spec.TrialParallel {
		block := spec.TrialBlock
		if block == 0 {
			block = sweep.DefaultTrialBlock
		}
		fmt.Printf("trial-parallel: blocks of %d trials (the block size is part of the output's byte contract)\n", block)
	}
	fmt.Printf("families to build (%d):\n", len(p.Families))
	for _, fp := range p.FamilyPlans {
		if fp.Err != "" {
			fmt.Printf("  %-24s estimate unavailable: %s\n", fp.Token, fp.Err)
			continue
		}
		fits := "fits"
		if !fp.Fits {
			fits = "OVER BUDGET"
		}
		// cost is the scheduler's per-cell dispatch score (UnitCost):
		// relative execution weight, the number cost-aware dispatch sorts
		// units by — not seconds.
		fmt.Printf("  %-24s n=%-12d m<=%-12d peak~%-8s cost~%-8s %s\n",
			fp.Token, fp.N, fp.M, humanBytes(fp.PeakBytes), humanCount(fp.CellCost), fits)
	}
	fmt.Printf("measures (%d): %s\n", len(p.Measures), strings.Join(p.Measures, ", "))
	fmt.Printf("models (%d): %s\n", len(p.Models), strings.Join(p.Models, ", "))
	fmt.Printf("rates (%d): %s\n", len(p.Rates), strings.Join(rateToks, ", "))
	fmt.Printf("trials/cell: %d  seed: %d\n", p.Trials, p.Seed)
	if rcache != nil {
		// Per-cell cache forecast: the same probe (key, verification,
		// coupled-group granularity) a real run performs, so "cached"
		// here is exactly the set of cells a warm run will not compute.
		cells := spec.ShardCells(sh)
		mask := spec.CachedMask(sh, rcache)
		hits := 0
		fmt.Printf("cells (%d):\n", len(cells))
		fmt.Printf("  %-4s %-24s %-12s %-12s %-10s %s\n", "idx", "family", "measure", "model", "rate", "cached")
		for i, c := range cells {
			mark := "-"
			if mask[i] {
				mark = "cached"
				hits++
			}
			fmt.Printf("  %-4d %-24s %-12s %-12s %-10s %s\n",
				i, c.Family.String(), c.Measure, c.Model,
				strconv.FormatFloat(c.Rate, 'g', -1, 64), mark)
		}
		fmt.Printf("%d/%d cells cached\n", hits, len(cells))
	}
	return nil
}

// humanCount renders a unitless score in the nearest decimal SI unit
// (1.5k, 2.3M) — the dry-run form of the scheduler's cost scores.
func humanCount(v float64) string {
	const unit = 1000
	if v < unit {
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
	div, exp := float64(unit), 0
	for n := v / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%c", v/div, "kMGTPE"[exp])
}

// humanBytes renders a byte count in the nearest binary unit.
func humanBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(b)/float64(div), "KMGTPE"[exp])
}

// sweepSpecFromFlags assembles and validates the grid spec from either a
// JSON file or the individual grid flags. -rate-mode, -precision,
// -trial-parallel, and -trial-block compose with -spec: a non-default
// flag overrides the file's field.
func sweepSpecFromFlags(specFile, families, measures, model, models, rates, rateMode, precision string, trials int, seed uint64, trialParallel bool, trialBlock int) (*sweep.Spec, error) {
	if specFile != "" {
		f, err := os.Open(specFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		spec, err := sweep.Load(f)
		if err != nil {
			return nil, err
		}
		if rateMode != "" || precision != "" || trialParallel || trialBlock != 0 {
			if rateMode != "" {
				spec.RateMode = rateMode
			}
			if precision != "" {
				spec.Precision = precision
			}
			if trialParallel {
				spec.TrialParallel = true
			}
			if trialBlock != 0 {
				spec.TrialBlock = trialBlock
			}
			if err := spec.Validate(); err != nil {
				return nil, err
			}
		}
		return spec, nil
	}
	if families == "" {
		return nil, fmt.Errorf("need -families (or -spec); e.g. -families torus:8x8,hypercube:6")
	}
	if rates == "" {
		return nil, fmt.Errorf("need -rates (or -spec); e.g. -rates 0,0.02,0.05,0.1")
	}
	fams, err := sweep.ParseFamilies(families)
	if err != nil {
		return nil, err
	}
	rs, err := sweep.ParseRates(rates)
	if err != nil {
		return nil, err
	}
	var modelAxis []string
	switch {
	case models != "" && model != "":
		return nil, fmt.Errorf("use -models or -model, not both")
	case models != "":
		if modelAxis, err = sweep.ParseModels(models); err != nil {
			return nil, err
		}
	case model != "":
		modelAxis = []string{model}
	default:
		modelAxis = []string{sweep.ModelIIDNode}
	}
	var ms []string
	for _, m := range strings.Split(measures, ",") {
		if m = strings.TrimSpace(m); m != "" {
			ms = append(ms, m)
		}
	}
	spec := &sweep.Spec{
		Families:      fams,
		Measures:      ms,
		Models:        modelAxis,
		Rates:         rs,
		Trials:        trials,
		Seed:          seed,
		RateMode:      rateMode,
		Precision:     precision,
		TrialParallel: trialParallel,
		TrialBlock:    trialBlock,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
