package main

// Golden-ish test for `faultexp version`: the exact revision and
// toolchain vary by build, so the test pins the shape — the header
// line, the fixed field labels, and the module path — rather than
// frozen bytes.

import (
	"bytes"
	"regexp"
	"testing"

	"faultexp/internal/sweep"
)

func TestVersionOutputShape(t *testing.T) {
	var buf bytes.Buffer
	if err := cmdVersion(&buf); err != nil {
		t.Fatalf("cmdVersion: %v", err)
	}
	out := buf.String()
	for _, re := range []string{
		`(?m)^faultexp \S+$`,         // header: name + version (devel under go test)
		`(?m)^  module    faultexp$`, // module path from build info
		`(?m)^  go        go\d`,      // toolchain line
		// The kernel stamp — what a fleet operator compares across
		// daemons to diagnose kernel skew from the CLI.
		`(?m)^  kernels   ` + regexp.QuoteMeta(sweep.KernelVersion) + `$`,
	} {
		if !regexp.MustCompile(re).MatchString(out) {
			t.Errorf("version output missing %s:\n%s", re, out)
		}
	}
	if bytes.Contains(buf.Bytes(), []byte("(devel)")) {
		t.Errorf("raw (devel) leaked into output:\n%s", out)
	}
}
