package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"faultexp/internal/sweep"
)

// TestListPrintsMeasuresAndModels pins the discovery surface: `faultexp
// list` must enumerate every registered sweep measure and fault model
// (and still list the experiments), so the CLI is the single place to
// see what a grid can sweep.
func TestListPrintsMeasuresAndModels(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	listErr := cmdList()
	w.Close()
	os.Stdout = old
	out, readErr := io.ReadAll(r)
	if listErr != nil {
		t.Fatalf("cmdList: %v", listErr)
	}
	if readErr != nil {
		t.Fatalf("reading captured output: %v", readErr)
	}
	s := string(out)
	for _, m := range sweep.Measures() {
		if !strings.Contains(s, m) {
			t.Errorf("list output missing measure %q", m)
		}
	}
	for _, m := range sweep.Models() {
		if !strings.Contains(s, m) {
			t.Errorf("list output missing fault model %q", m)
		}
	}
	for _, id := range []string{"E1 ", "E19"} {
		if !strings.Contains(s, id) {
			t.Errorf("list output missing experiment %q", id)
		}
	}
}
