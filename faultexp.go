// Package faultexp is a library for studying how node and edge faults
// affect the expansion of networks, reproducing Bagchi, Bhargava,
// Chaudhary, Eppstein and Scheideler, "The Effect of Faults on Network
// Expansion" (SPAA 2004).
//
// The library answers the paper's central question — how many faults can
// a network sustain so that it still contains a linear-sized connected
// component with approximately the original expansion? — with working
// algorithms:
//
//   - Prune (Figure 1 / Theorem 2.1): extract a large subnetwork of
//     certified node expansion from an adversarially-faulted network.
//   - Prune2 (Figure 2 / Theorem 3.4): the edge-expansion analogue for
//     random faults, with Lemma 3.3 compactification.
//   - Span (§1.4): the paper's new parameter controlling random-fault
//     tolerance, with exact computation, sampling, and the constructive
//     Theorem 3.6 certificate for d-dimensional meshes.
//
// plus the full substrate: graph families (meshes, tori, hypercubes,
// butterflies, expanders, chain graphs, de Bruijn, shuffle-exchange…),
// expansion estimation (exact + spectral), fault models and adversaries,
// percolation sweeps, and fault-free-into-faulty embeddings.
//
// # Quick start
//
//	g := faultexp.Torus(16, 16)
//	rng := faultexp.NewRNG(1)
//	pat := faultexp.RandomNodeFaults(g, 0.01, rng)
//	faulty := pat.Apply(g)
//	res := faultexp.Prune2(faulty.G, 0.5, 0.125, rng)
//	fmt.Println("survivor:", res.SurvivorSize(), "certified quotient:", res.CertifiedQuotient)
//
// See the examples/ directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the theorem-by-theorem
// reproduction results.
package faultexp

import (
	"context"
	"io"

	"faultexp/internal/agree"
	"faultexp/internal/balance"
	"faultexp/internal/cache"
	"faultexp/internal/core"
	"faultexp/internal/cuts"
	"faultexp/internal/embed"
	"faultexp/internal/expansion"
	"faultexp/internal/fabric"
	"faultexp/internal/faults"
	"faultexp/internal/gen"
	"faultexp/internal/graph"
	"faultexp/internal/perc"
	"faultexp/internal/route"
	"faultexp/internal/span"
	"faultexp/internal/spectral"
	"faultexp/internal/sweep"
	"faultexp/internal/xrand"

	// Imported for its side effect of registering the built-in sweep
	// measures (the prune/gamma/span/percolation pipelines plus the
	// measures extracted from the E1–E19 experiment kernels).
	_ "faultexp/internal/experiments"
)

// Graph is an immutable undirected graph in compressed-sparse-row form.
type Graph = graph.Graph

// Sub is an induced subgraph with provenance back to its parent graph.
type Sub = graph.Sub

// RNG is the deterministic random generator used across the library.
type RNG = xrand.RNG

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// Workspace is per-worker reusable scratch memory for the trial hot
// path: fault injection, induced-subgraph construction, and component
// labelling reuse its buffers instead of allocating per trial. One
// Workspace per goroutine, never shared; a workspace build never
// clobbers the graph it reads from, but may clobber any other
// workspace-built graph (see the README architecture note for the
// ownership rules).
type Workspace = graph.Workspace

// NewWorkspace returns an empty Workspace (buffers grow on demand).
func NewWorkspace() *Workspace { return graph.NewWorkspace() }

// NewBuilder starts constructing a graph on n vertices.
func NewBuilder(n int) *graph.Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n vertices from an undirected edge list.
func FromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// --- Graph families (package gen) ---

// GraphFamily is one entry of the graph-family registry: a named,
// deterministic, seeded constructor with self-describing metadata
// (size-token syntax, k-parameter use, doc line).
type GraphFamily = gen.Family

// GraphFamilies returns the registered families in canonical order.
func GraphFamilies() []GraphFamily { return gen.Families() }

// GraphFamilyByName resolves a registered family name ("mesh", "gnp", …).
func GraphFamilyByName(name string) (GraphFamily, bool) { return gen.FamilyByName(name) }

// BuildFamily constructs a registered family from its name, size token,
// and family parameter k (chain length / rewired edges / shortcut
// edges, per the family's KUse). Randomized families draw from rng.
func BuildFamily(family, size string, k int, rng *RNG) (*Graph, []int, error) {
	return gen.FromFamily(family, size, k, rng)
}

// Mesh returns the d-dimensional mesh with the given side lengths.
func Mesh(dims ...int) *Graph { return gen.Mesh(dims...) }

// Torus returns the d-dimensional torus with the given side lengths.
func Torus(dims ...int) *Graph { return gen.Torus(dims...) }

// CAN returns a CAN-style overlay: a dim-dimensional torus with the
// given side (§4 of the paper).
func CAN(dim, side int) *Graph { return gen.CAN(dim, side) }

// Hypercube returns the d-dimensional hypercube.
func Hypercube(d int) *Graph { return gen.Hypercube(d) }

// Butterfly returns the d-dimensional butterfly network.
func Butterfly(d int) *Graph { return gen.Butterfly(d) }

// Expander returns a constant-degree expander (Margulis–Gabber–Galil)
// on m² vertices.
func Expander(m int) *Graph { return gen.GabberGalil(m) }

// RandomRegular returns a random d-regular graph on n vertices.
func RandomRegular(n, d int, rng *RNG) *Graph { return gen.RandomRegular(n, d, rng) }

// GNP returns an Erdős–Rényi random graph G(n, p).
func GNP(n int, p float64, rng *RNG) *Graph { return gen.GNP(n, p, rng) }

// RingLattice returns the Watts–Strogatz substrate C(n, d): n vertices
// on a cycle, each joined to its d nearest neighbors (d even).
func RingLattice(n, d int) *Graph { return gen.RingLattice(n, d) }

// SmallWorld returns a Watts–Strogatz small-world graph: RingLattice(n,
// d) with `rewires` randomly chosen edges redirected to random
// endpoints (edge count preserved).
func SmallWorld(n, d, rewires int, rng *RNG) *Graph { return gen.SmallWorld(n, d, rewires, rng) }

// AddShortcuts returns base plus k random shortcut edges between
// non-adjacent vertex pairs — the Hayashi–Matsukubo robustness
// hardening for geographic (lattice-like) networks.
func AddShortcuts(base *Graph, k int, rng *RNG) *Graph { return gen.Shortcut(base, k, rng) }

// ChainGraph is the Theorem 2.3 construction (edges replaced by chains).
type ChainGraph = gen.ChainGraph

// ChainReplace replaces every edge of base with a chain of k vertices.
func ChainReplace(base *Graph, k int) *ChainGraph { return gen.ChainReplace(base, k) }

// --- Expansion (packages expansion, cuts, spectral) ---

// ExpansionResult describes a located cut witness.
type ExpansionResult = expansion.Result

// NodeExpansion estimates the graph's node expansion
// α = min |Γ(U)|/|U| over |U| ≤ n/2 (exact for n ≤ 22; the best
// heuristic witness otherwise). The boolean reports exactness.
func NodeExpansion(g *Graph, rng *RNG) (ExpansionResult, bool) {
	return cuts.EstimateNodeExpansion(g, cuts.Options{RNG: rng})
}

// EdgeExpansion estimates the graph's edge expansion αe.
func EdgeExpansion(g *Graph, rng *RNG) (ExpansionResult, bool) {
	return cuts.EstimateEdgeExpansion(g, cuts.Options{RNG: rng})
}

// Lambda2 returns the second-smallest eigenvalue of the normalized
// Laplacian (algebraic connectivity), computed matrix-free by Lanczos.
func Lambda2(g *Graph, rng *RNG) float64 { return spectral.Lambda2(g, rng) }

// CheegerBounds converts λ₂ into the two-sided conductance bound
// λ₂/2 ≤ h(G) ≤ √(2λ₂).
func CheegerBounds(lambda2 float64) (lower, upper float64) {
	return spectral.CheegerBounds(lambda2)
}

// --- Faults (package faults) ---

// FaultPattern is a set of faulty nodes. Its Nodes are always sorted
// ascending and duplicate-free (see faults.NewPattern).
type FaultPattern = faults.Pattern

// NewFaultPattern canonicalizes raw node indices into a FaultPattern
// (sorted, deduplicated; the input slice is taken over).
func NewFaultPattern(nodes []int) FaultPattern { return faults.NewPattern(nodes) }

// Adversary selects worst-case fault sets.
type Adversary = faults.Adversary

// FaultModel is the uniform fault-injection interface the sweep engine
// drives: one faulted subgraph per Inject call, built into a Workspace.
type FaultModel = faults.Model

// FaultModels returns the built-in fault models (iid-node, iid-edge,
// adversarial/bottleneck) in canonical order.
func FaultModels() []FaultModel { return faults.Models() }

// FaultModelByName resolves a canonical fault-model name.
func FaultModelByName(name string) (FaultModel, bool) { return faults.ModelByName(name) }

// RandomNodeFaults fails each node independently with probability p.
func RandomNodeFaults(g *Graph, p float64, rng *RNG) FaultPattern {
	return faults.IIDNodes(g, p, rng)
}

// AdversarialFaults applies the bottleneck-targeting adversary with
// budget f — the strategy that makes Theorem 2.1 tight.
func AdversarialFaults(g *Graph, f int, rng *RNG) FaultPattern {
	return faults.BottleneckAdversary{}.Select(g, f, rng)
}

// --- Pruning (package core) ---

// PruneResult is the outcome of a pruning run, with the survivor,
// cull log, and expansion certificate.
type PruneResult = core.Result

// Prune runs the Figure 1 algorithm: cull node-expansion bottlenecks of
// the faulty graph gf below alpha·eps; Theorem 2.1 guarantees
// |H| ≥ n − k·f/α at eps = 1−1/k.
func Prune(gf *Graph, alpha, eps float64, rng *RNG) *PruneResult {
	return core.Prune(gf, alpha, eps, core.Options{Finder: cuts.Options{RNG: rng}})
}

// Prune2 runs the Figure 2 algorithm: cull connected edge-expansion
// bottlenecks below alphaE·eps with compactification; Theorem 3.4
// guarantees |H| ≥ n/2 w.h.p. below the span fault threshold.
func Prune2(gf *Graph, alphaE, eps float64, rng *RNG) *PruneResult {
	return core.Prune2(gf, alphaE, eps, core.Options{Finder: cuts.Options{RNG: rng}})
}

// ResidualExpansion measures the survivor's node and edge expansion.
func ResidualExpansion(h *Graph, rng *RNG) (nodeAlpha, edgeAlpha float64) {
	return core.MeasureResidual(h, rng)
}

// --- Span (package span) ---

// SpanEstimate is the result of a span computation.
type SpanEstimate = span.Estimate

// ExactSpan computes the true span of a small graph (n ≤ 20) by
// exhaustive compact-set enumeration.
func ExactSpan(g *Graph) SpanEstimate { return span.Exact(g) }

// SampledSpan estimates the span of a large graph from random compact
// sets.
func SampledSpan(g *Graph, samples int, rng *RNG) SpanEstimate {
	return span.Sampled(g, samples, rng)
}

// SpanFaultTolerance returns Theorem 3.4's fault-probability threshold
// 1/(2e·δ⁴σ).
func SpanFaultTolerance(maxDegree int, sigma float64) float64 {
	return span.FaultToleranceFromSpan(maxDegree, sigma)
}

// MeshSpanCertificate runs the constructive Theorem 3.6 bound for one
// compact set of a mesh built with Mesh(dims...): a boundary-spanning
// tree with at most 2(|B|−1) edges.
func MeshSpanCertificate(g *Graph, dims []int, set []int) (span.MeshCert, error) {
	return span.MeshBoundaryTree(g, dims, set)
}

// --- Percolation (package perc) ---

// PercolationMode selects site or bond percolation.
type PercolationMode = perc.Mode

// Site and Bond are the percolation modes.
const (
	Site = perc.Site
	Bond = perc.Bond
)

// PercolationCurve runs averaged Newman–Ziff sweeps and returns the
// whole γ(p) curve.
func PercolationCurve(g *Graph, mode PercolationMode, trials int, rng *RNG) *perc.Curve {
	return perc.Sweep(g, mode, trials, rng)
}

// CriticalProbability estimates the occupation probability at which the
// expected largest-component fraction reaches target.
func CriticalProbability(g *Graph, mode PercolationMode, target float64, trials, iters int, rng *RNG) float64 {
	return perc.CriticalP(g, mode, target, trials, iters, rng)
}

// --- Load balancing (package balance, §1.3 application) ---

// Diffuse runs the given number of first-order diffusion rounds on a
// load vector and returns the result (load is not modified).
func Diffuse(g *Graph, load []float64, rounds int) []float64 {
	return balance.Diffuse(g, load, rounds)
}

// RoundsToBalance reports how many diffusion rounds the network needs to
// bring a load vector within tol of uniform — the §1.3 operational
// consequence of expansion.
func RoundsToBalance(g *Graph, load []float64, tol float64, maxRounds int) int {
	return balance.RoundsToBalance(g, load, tol, maxRounds)
}

// --- Agreement (package agree, §1.3 application) ---

// Agreement is an almost-everywhere-agreement execution: iterated
// majority with Byzantine nodes that push the honest minority value.
type Agreement = agree.Instance

// NewAgreement initializes an agreement run on g with the given
// Byzantine nodes; honest nodes start true with probability pTrue.
func NewAgreement(g *Graph, byzantine []int, pTrue float64, rng *RNG) *Agreement {
	return agree.NewInstance(g, byzantine, pTrue, rng)
}

// --- Routing (package route, §1.3 application) ---

// RouteResult summarizes a shortest-path routing workload.
type RouteResult = route.Result

// RouteRandomPairs routes uniformly random source–destination pairs
// along BFS shortest paths and reports congestion and stretch.
func RouteRandomPairs(g *Graph, pairs int, rng *RNG) RouteResult {
	return route.RandomPairs(g, pairs, rng)
}

// RoutePermutation routes a full random permutation (every vertex sends
// to a distinct random destination).
func RoutePermutation(g *Graph, rng *RNG) RouteResult {
	return route.Permutation(g, rng)
}

// --- Parameter sweeps (package sweep) ---

// SweepSpec is a declarative parameter grid: graph families × measures
// × fault models × fault rates, with per-cell trials. Cell seeds are
// hash-split from the grid seed, so results are byte-identical for any
// worker count or shard split. The legacy scalar Model field is still
// accepted and folded into Models by Validate.
type SweepSpec = sweep.Spec

// SweepFamily names one graph family entry of a sweep grid.
type SweepFamily = sweep.FamilySpec

// SweepResult is one streamed sweep record.
type SweepResult = sweep.Result

// SweepWriter consumes streamed sweep results.
type SweepWriter = sweep.Writer

// SweepSummary is the aggregate outcome of a sweep run.
type SweepSummary = sweep.Summary

// NewSweepJSONL returns a streaming JSONL result writer.
func NewSweepJSONL(w io.Writer) SweepWriter { return sweep.NewJSONL(w) }

// NewSweepCSV returns a streaming long-format CSV result writer.
func NewSweepCSV(w io.Writer) SweepWriter { return sweep.NewCSV(w) }

// SweepOptions tunes one sweep run: worker count, progress callback,
// and the round-robin shard this process executes.
type SweepOptions = sweep.Options

// SweepShard selects the round-robin slice of a grid one process runs
// (cell i runs on shard i mod Count); per-shard outputs merge back to
// the unsharded bytes with MergeSweepShards.
type SweepShard = sweep.Shard

// ParseSweepShard parses the CLI shard token "i/m" (0-based).
func ParseSweepShard(tok string) (SweepShard, error) { return sweep.ParseShard(tok) }

// RunSweep executes a grid on up to workers goroutines (0 = GOMAXPROCS),
// streaming results to w in deterministic cell order.
//
// Deprecated: use NewSweepJob, which adds context cancellation,
// mid-flight snapshots, and resumable interruption; RunSweep is a thin
// synchronous wrapper kept for compatibility.
func RunSweep(spec *SweepSpec, w SweepWriter, workers int) (SweepSummary, error) {
	return sweep.Run(spec, w, sweep.Options{Workers: workers})
}

// RunSweepOpt is RunSweep with full options (shard, progress).
//
// Deprecated: use NewSweepJob with SweepJobShard/SweepJobSkipCells/
// SweepJobProgress options; RunSweepOpt is a thin synchronous wrapper
// kept for compatibility.
func RunSweepOpt(spec *SweepSpec, w SweepWriter, opt SweepOptions) (SweepSummary, error) {
	return sweep.Run(spec, w, opt)
}

// --- The context-aware Job API ---

// SweepJob is one grid run as a first-class object: Start(ctx) launches
// it, Snapshot() observes it lock-free mid-flight, Cancel() (or
// cancelling ctx) drains the pool at a cell boundary — leaving JSONL
// output that ScanSweepResume accepts and -resume completes to bytes
// identical to an uninterrupted run — and Wait() collects the outcome.
// This is the execution surface behind `faultexp sweep` and the
// `faultexp serve` HTTP daemon.
type SweepJob = sweep.Job

// SweepJobOption configures a SweepJob at construction (writer, worker
// count, shard, skip, progress callback).
type SweepJobOption = sweep.JobOption

// SweepSnapshot is a point-in-time, lock-free view of a job: state,
// cells done/total, trials done, errors, wall-clock, shard.
type SweepSnapshot = sweep.Snapshot

// SweepJobState is a job's lifecycle phase as reported by snapshots.
type SweepJobState = sweep.JobState

// The SweepJob lifecycle states.
const (
	SweepJobPending   = sweep.JobPending
	SweepJobRunning   = sweep.JobRunning
	SweepJobDone      = sweep.JobDone
	SweepJobCancelled = sweep.JobCancelled
	SweepJobFailed    = sweep.JobFailed
)

// NewSweepJob validates the spec and options and returns a ready-to-
// Start job; the expensive work happens after Start, on the job's own
// goroutine.
func NewSweepJob(spec *SweepSpec, opts ...SweepJobOption) (*SweepJob, error) {
	return sweep.NewJob(spec, opts...)
}

// SweepJobWriter sets the job's streamed result sink.
func SweepJobWriter(w SweepWriter) SweepJobOption { return sweep.WithWriter(w) }

// SweepJobWorkers overrides the job's worker-pool size (0 = the spec's
// Workers, then GOMAXPROCS). Worker count never affects output bytes.
func SweepJobWorkers(n int) SweepJobOption { return sweep.WithWorkers(n) }

// SweepJobShard restricts the job to one round-robin slice of the grid.
func SweepJobShard(sh SweepShard) SweepJobOption { return sweep.WithShard(sh) }

// SweepJobSkipCells skips the job's first n cells — the resume path
// (pair with ScanSweepResume).
func SweepJobSkipCells(n int) SweepJobOption { return sweep.WithSkipCells(n) }

// SweepJobProgress installs a per-cell progress callback.
func SweepJobProgress(fn func(done, total int)) SweepJobOption { return sweep.WithProgress(fn) }

// MergeSweepShards reassembles per-shard JSONL streams (in shard order)
// into unsharded cell order: jsonl receives the original lines
// byte-for-byte, and w (e.g. NewSweepCSV) receives every decoded record
// — both optional. Pass the grid spec to additionally verify every
// record lands at its exact cell position (seed check), which catches
// equal-length shards supplied in the wrong order; nil skips it.
// Returns the number of merged records.
func MergeSweepShards(shards []io.Reader, jsonl io.Writer, w SweepWriter, spec *SweepSpec) (int, error) {
	return sweep.MergeShards(shards, jsonl, w, spec)
}

// SweepMeasures lists the registered sweep measures.
func SweepMeasures() []string { return sweep.Measures() }

// SweepFaultModels lists the fault-model names a sweep grid accepts.
func SweepFaultModels() []string { return sweep.Models() }

// Rate-mode tokens for SweepSpec.RateMode: independent (the default —
// every cell draws its own fault sets) or coupled (one uniform draw per
// element serves the whole rate axis, making fault sets monotone in the
// rate and letting union-find measures sweep the axis in one
// incremental pass per trial).
const (
	SweepRateModeIndependent = sweep.RateModeIndependent
	SweepRateModeCoupled     = sweep.RateModeCoupled
)

// SweepCoupledMeasures lists the measures that implement coupled rate
// mode (a subset of SweepMeasures; coupled grids accept only these).
func SweepCoupledMeasures() []string { return sweep.CoupledMeasures() }

// SweepPrecisionExact is the default precision token for
// SweepSpec.Precision: exact kernels under the standard size caps.
// "sampled:k" selects the k-sample estimator tier instead — error bars
// through _std companions plus explicit bound metrics, raised size
// caps, and deterministic output just like exact.
const SweepPrecisionExact = "exact"

// SweepSampledMeasures lists the measures with a sampled-precision
// kernel (a subset of SweepMeasures; "sampled:k" grids accept only
// these).
func SweepSampledMeasures() []string { return sweep.SampledMeasures() }

// SweepDefaultTrialBlock is the trial-block size a trial-parallel spec
// gets when SweepSpec.TrialBlock is zero. Under trial-parallel mode a
// cell's trial loop splits into blocks of this many trials, each a
// schedulable unit on the worker pool; the block partition is part of
// the output's byte contract (Result.TrialBlock), so changing it — like
// changing the seed — produces a different, internally consistent
// stream.
const SweepDefaultTrialBlock = sweep.DefaultTrialBlock

// SweepTrialMeasures lists the trial-grained measures — the subset of
// SweepMeasures whose kernels run per trial and therefore support
// trial-parallel execution (SweepSpec.TrialParallel).
func SweepTrialMeasures() []string { return sweep.TrialMeasures() }

// SweepUnitCost scores the relative execution cost of trials trials on
// a graph with n vertices and m edges — the gen.EstimateFamily-derived
// score the job scheduler dispatches largest-first and `sweep -dry-run`
// prints per cell (SweepPlan's FamilyPlan.CellCost). sampledK is 0 for
// exact kernels, the sample count for "sampled:k" kernels. The score
// orders units; it does not predict seconds.
func SweepUnitCost(n, m int64, trials, sampledK int) float64 {
	p := sweep.Precision{}
	if sampledK > 0 {
		p = sweep.Precision{Sampled: true, K: sampledK}
	}
	return sweep.UnitCost(n, m, trials, p)
}

// SweepPlan describes what a run would execute — cells before and after
// shard selection, trial volume, and the family graphs to build —
// without executing anything (the `faultexp sweep -dry-run` surface).
// Obtain one with spec.Plan(shard).
type SweepPlan = sweep.Plan

// SweepResumeState is the verified prefix of an interrupted sweep's
// JSONL output: how many leading cells are complete and the byte offset
// appending must start from.
type SweepResumeState = sweep.ResumeState

// ScanSweepResume validates an existing JSONL output against the grid's
// (sharded) cell sequence so the run can be resumed: records are pinned
// to their exact cell position by seed and trial budget, mismatched
// specs are refused, and a trailing mid-write partial record is marked
// for truncation. Execute the remainder with SweepOptions.SkipCells =
// state.Done; the resumed file is byte-identical to an uninterrupted
// run.
func ScanSweepResume(r io.Reader, spec *SweepSpec, shard SweepShard) (SweepResumeState, error) {
	if err := spec.Validate(); err != nil {
		return SweepResumeState{}, err
	}
	if err := shard.Validate(); err != nil {
		return SweepResumeState{}, err
	}
	return sweep.ScanResume(r, spec.ShardCells(shard))
}

// SweepTrialSeed derives the deterministic RNG root for trial t of a
// cell: it depends only on (cell seed, t), so any single trial of any
// cell can be replayed in isolation, and growing a cell's trial budget
// never changes its earlier trials.
func SweepTrialSeed(cellSeed uint64, t int) uint64 { return sweep.TrialSeed(cellSeed, t) }

// SweepAggregator groups sweep records by chosen dimensions and reduces
// every metric to n/mean/std/min/max/median summary rows, streaming —
// O(groups × metrics) memory however large the input (the `faultexp
// agg` surface).
type SweepAggregator = sweep.Aggregator

// NewSweepAggregator returns an aggregator grouping by the given
// dimensions (see SweepAggDims; empty = one global group), keeping only
// the named metrics (nil = all).
func NewSweepAggregator(by, metrics []string) (*SweepAggregator, error) {
	return sweep.NewAggregator(by, metrics)
}

// SweepAggDims lists the record dimensions a summary can group by.
func SweepAggDims() []string { return append([]string(nil), sweep.AggDims...) }

// --- The content-addressed result cache (package cache) ---

// ResultCache is an on-disk content-addressed store of sweep records:
// each entry is one cell's exact JSONL bytes under a key derived from
// everything that could change them (SweepCellCacheKey). Entries are
// written atomically (temp file + rename) and read back only if their
// length+CRC-32C header verifies — a torn or corrupt entry is a miss,
// never a payload. Safe for concurrent use by any number of processes
// sharing the directory (the `faultexp sweep/serve -cache DIR` surface).
type ResultCache = cache.Cache

// CacheKey is a 32-byte content address (SHA-256 of an injective
// field encoding).
type CacheKey = cache.Key

// CacheHasher derives CacheKeys from typed fields; Reset lets one
// hasher serve a whole grid without allocating (see
// BenchmarkCacheKeyHash).
type CacheHasher = cache.Hasher

// CacheFlight coordinates single-flight computation of cache misses:
// concurrent jobs wanting the same key elect one leader to compute it,
// and followers reuse its bytes (the `faultexp serve -cache` dedup).
type CacheFlight = cache.Flight

// OpenResultCache opens (creating if needed) a result cache directory.
func OpenResultCache(dir string) (*ResultCache, error) { return cache.Open(dir) }

// NewCacheFlight returns an empty single-flight group.
func NewCacheFlight() *CacheFlight { return cache.NewFlight() }

// SweepKernelVersion stamps every cache key with the generation of the
// measurement kernels; bumping it orphans all existing entries, which
// is how cache invalidation works — stale results are never found, so
// a version bump costs one cold run, never a wrong byte.
const SweepKernelVersion = sweep.KernelVersion

// SweepCellCacheKey derives the content address of one cell's output
// record: the kernel version, the spec's rate mode ("" = independent),
// and the cell's full identity (family, size, k, measure, model, exact
// rate bits, trials, derived seed, precision tier, trial block).
func SweepCellCacheKey(h *CacheHasher, rateMode string, c sweep.Cell) CacheKey {
	return sweep.CellCacheKey(h, rateMode, c)
}

// SweepWithCache routes a job through a result cache: cells whose
// verified records are already stored emit those exact bytes (skipping
// graph build and trials), misses compute and write back. Snapshots
// report the accounting in CacheHits/CacheMisses/CacheInflight.
func SweepWithCache(rc *ResultCache) SweepJobOption { return sweep.WithCache(rc) }

// SweepWithFlight dedups identical in-flight cells across jobs sharing
// the flight group (pair with SweepWithCache; the serve configuration).
func SweepWithFlight(f *CacheFlight) SweepJobOption { return sweep.WithFlight(f) }

// --- Embedding / emulation (package embed, §1.2) ---

// Embedding maps a guest graph into a host graph with routed paths.
type Embedding = embed.Embedding

// EmbedMetrics are the load/congestion/dilation of an embedding, plus
// the Leighton–Maggs–Rao slowdown estimate ℓ+c+d.
type EmbedMetrics = embed.Metrics

// Emulate embeds the ideal graph into a surviving component of its
// faulty self (nearest-alive node remap + BFS routing), the §1.2
// fault-free-on-faulty emulation pipeline.
func Emulate(ideal *Graph, survivor *Sub) (*Embedding, error) {
	return embed.EmulateFaultyMesh(ideal, survivor)
}

// --- Distributed sweep fabric (package fabric) ---

// FabricServer is the HTTP job daemon behind `faultexp serve` and
// `faultexp worker`: a bounded pool of sweep jobs behind POST /v1/jobs,
// live JSONL result streams, and a /healthz reporting the build and
// kernel-version stamps a fleet matches on.
type FabricServer = fabric.Server

// FabricConfig sizes a FabricServer (pool bounds, result retention cap,
// shared result cache and single-flight group).
type FabricConfig = fabric.Config

// NewFabricServer builds a job server whose jobs run under ctx.
func NewFabricServer(ctx context.Context, cfg FabricConfig) *FabricServer {
	return fabric.NewServer(ctx, cfg)
}

// FabricClient drives one worker daemon over its /v1 job surface —
// submit (with shard/skip restriction), stream, snapshot, delete.
type FabricClient = fabric.Client

// NewFabricClient normalizes addr ("host:port" or URL) into a client.
func NewFabricClient(addr string) *FabricClient { return fabric.NewClient(addr) }

// FabricHealth is the GET /healthz body of serve and worker daemons.
type FabricHealth = fabric.Health

// FabricStore is the coordinator's durable job store: one append-only
// directory per job (spec, meta, per-shard JSONL), so a SIGKILLed
// coordinator rebuilds every job and resumes from exact output
// prefixes.
type FabricStore = fabric.Store

// OpenFabricStore opens (creating if needed) a store rooted at dir.
func OpenFabricStore(dir string) (*FabricStore, error) { return fabric.OpenStore(dir) }

// FabricCoordinator fans a grid spec out over a worker fleet as
// round-robin shards and streams back the merged interleave —
// byte-identical to a single-node run, with dead workers' shards
// reassigned mid-stream via the verified-prefix resume.
type FabricCoordinator = fabric.Coordinator

// FabricCoordinatorConfig wires a coordinator: the fleet, the durable
// store, concurrency and backpressure bounds, health-check cadence.
type FabricCoordinatorConfig = fabric.CoordinatorConfig

// NewFabricCoordinator rebuilds every stored job and starts the fleet
// health loop.
func NewFabricCoordinator(ctx context.Context, cfg FabricCoordinatorConfig) (*FabricCoordinator, error) {
	return fabric.NewCoordinator(ctx, cfg)
}

// FabricJobView / FabricCoordJobView / FabricWorkerView are the JSON
// shapes of jobs and workers in fabric HTTP responses.
type (
	FabricJobView      = fabric.JobView
	FabricCoordJobView = fabric.CoordJobView
	FabricWorkerView   = fabric.WorkerView
)

// SweepShardFileName is the canonical on-disk name of one shard's JSONL
// output ("shard-<i>-of-<m>.jsonl") — the durable job store layout and
// what `faultexp merge -dir` discovers.
func SweepShardFileName(sh SweepShard) string { return sweep.ShardFileName(sh) }

// SweepShardFiles discovers a complete shard file set in dir, in shard
// order, ready for MergeSweepShards.
func SweepShardFiles(dir string) ([]string, error) { return sweep.ShardFiles(dir) }

// SweepShardLineCount is the exact line count of one shard's complete
// output for a grid of total cells.
func SweepShardLineCount(total int, sh SweepShard) int { return sweep.ShardLineCount(total, sh) }
