package faultexp_test

// End-to-end tests of the public API: the paths a downstream user takes,
// wired exactly as README and the examples show them.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"testing"

	"faultexp"
)

func TestPublicQuickstartPipeline(t *testing.T) {
	g := faultexp.Torus(12, 12)
	rng := faultexp.NewRNG(42)

	alphaE, _ := faultexp.EdgeExpansion(g, rng.Split())
	if alphaE.EdgeAlpha <= 0 {
		t.Fatal("edge expansion must be positive")
	}
	pat := faultexp.RandomNodeFaults(g, 0.03, rng.Split())
	faulty := pat.Apply(g)
	res := faultexp.Prune2(faulty.G, alphaE.EdgeAlpha, 0.125, rng.Split())
	if res.SurvivorSize() < g.N()/2 {
		t.Fatalf("survivor %d below n/2", res.SurvivorSize())
	}
	na, ea := faultexp.ResidualExpansion(res.H.G, rng.Split())
	if na <= 0 || ea <= 0 {
		t.Fatal("residual expansion must be positive")
	}
}

func TestPublicAdversarialPipeline(t *testing.T) {
	g := faultexp.Expander(8)
	rng := faultexp.NewRNG(7)
	alpha, _ := faultexp.NodeExpansion(g, rng.Split())
	pat := faultexp.AdversarialFaults(g, 3, rng.Split())
	res := faultexp.Prune(pat.Apply(g).G, alpha.NodeAlpha, 0.5, rng.Split())
	if res.SurvivorSize() < g.N()-30 {
		t.Fatalf("expander survivor too small: %d of %d", res.SurvivorSize(), g.N())
	}
}

func TestPublicSpanAPI(t *testing.T) {
	mesh := faultexp.Mesh(3, 3)
	est := faultexp.ExactSpan(mesh)
	if est.Sigma <= 0 || est.Sigma > 2 {
		t.Fatalf("3x3 mesh span = %v", est.Sigma)
	}
	big := faultexp.Mesh(8, 8)
	sampled := faultexp.SampledSpan(big, 30, faultexp.NewRNG(3))
	if sampled.Sets == 0 || sampled.Sigma <= 0 {
		t.Fatalf("sampled span failed: %+v", sampled)
	}
	cert, err := faultexp.MeshSpanCertificate(big, []int{8, 8}, []int{0, 1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.WithinTwoCert || !cert.EvConnected {
		t.Fatalf("certificate failed: %+v", cert)
	}
	p := faultexp.SpanFaultTolerance(4, 2)
	if p <= 0 || p >= 1 {
		t.Fatalf("tolerance %v out of range", p)
	}
}

func TestPublicPercolationAPI(t *testing.T) {
	g := faultexp.Torus(16, 16)
	rng := faultexp.NewRNG(5)
	curve := faultexp.PercolationCurve(g, faultexp.Site, 5, rng.Split())
	if curve.AtP(1) != 1 {
		t.Fatalf("γ(1) = %v", curve.AtP(1))
	}
	pc := faultexp.CriticalProbability(g, faultexp.Bond, 0.2, 8, 8, rng.Split())
	if pc < 0.2 || pc > 0.8 {
		t.Fatalf("2D bond threshold estimate %v implausible", pc)
	}
}

func TestPublicSpectralAPI(t *testing.T) {
	g := faultexp.Hypercube(4)
	l2 := faultexp.Lambda2(g, faultexp.NewRNG(9))
	// Q4 normalized Laplacian: λ2 = 2/4 = 0.5.
	if math.Abs(l2-0.5) > 1e-6 {
		t.Fatalf("Q4 λ2 = %v, want 0.5", l2)
	}
	lo, hi := faultexp.CheegerBounds(l2)
	if math.Abs(lo-0.25) > 1e-6 || math.Abs(hi-1) > 1e-6 {
		t.Fatalf("Cheeger bounds %v %v", lo, hi)
	}
}

func TestPublicEmbeddingAPI(t *testing.T) {
	g := faultexp.Torus(8, 8)
	rng := faultexp.NewRNG(11)
	pat := faultexp.RandomNodeFaults(g, 0.05, rng.Split())
	core := pat.Apply(g).LargestComponentSub()
	emb, err := faultexp.Emulate(g, core)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(); err != nil {
		t.Fatal(err)
	}
	m := emb.Evaluate()
	if m.Slowdown != m.Load+m.Congestion+m.Dilation {
		t.Fatal("slowdown identity broken")
	}
}

func TestPublicBalanceAPI(t *testing.T) {
	g := faultexp.Torus(8, 8)
	load := make([]float64, g.N())
	load[0] = float64(g.N())
	after := faultexp.Diffuse(g, load, 10)
	if len(after) != g.N() {
		t.Fatal("diffuse shape wrong")
	}
	sum := 0.0
	for _, x := range after {
		sum += x
	}
	if math.Abs(sum-float64(g.N())) > 1e-6 {
		t.Fatalf("load not conserved: %v", sum)
	}
	r := faultexp.RoundsToBalance(g, load, 0.05, 100000)
	if r <= 0 || r >= 100000 {
		t.Fatalf("rounds to balance = %d", r)
	}
}

func TestPublicAgreementAPI(t *testing.T) {
	g := faultexp.Expander(10)
	rng := faultexp.NewRNG(13)
	inst := faultexp.NewAgreement(g, rng.SampleK(g.N(), 5), 0.7, rng.Split())
	frac := inst.Run(25)
	if frac < 0.85 {
		t.Fatalf("expander agreement = %v", frac)
	}
}

func TestPublicRoutingAPI(t *testing.T) {
	g := faultexp.Torus(8, 8)
	rng := faultexp.NewRNG(17)
	res := faultexp.RouteRandomPairs(g, 100, rng.Split())
	if res.Pairs != 100 || res.Congestion < 1 {
		t.Fatalf("routing result %+v", res)
	}
	perm := faultexp.RoutePermutation(g, rng.Split())
	if perm.Pairs+perm.Unreached != g.N() {
		t.Fatalf("permutation covered %d", perm.Pairs+perm.Unreached)
	}
}

func TestPublicBuilders(t *testing.T) {
	b := faultexp.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("builder produced %v", g)
	}
	g2 := faultexp.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if g2.M() != 2 {
		t.Fatal("FromEdges wrong")
	}
	cg := faultexp.ChainReplace(faultexp.Expander(4), 3)
	if cg.K != 3 || cg.G.N() <= cg.Base.N() {
		t.Fatal("chain replace wrong")
	}
	if faultexp.CAN(2, 8).N() != 64 {
		t.Fatal("CAN wrong")
	}
	if faultexp.Butterfly(3).N() != 32 {
		t.Fatal("butterfly wrong")
	}
	if faultexp.RandomRegular(10, 3, faultexp.NewRNG(1)).MinDegree() != 3 {
		t.Fatal("random regular wrong")
	}
}

// TestPublicFamilyRegistryAndShardedSweep walks the new public surface
// end to end: registry lookup, building a randomized family, and a
// multi-model sharded sweep whose merged output is byte-identical to
// the unsharded run.
func TestPublicFamilyRegistryAndShardedSweep(t *testing.T) {
	fam, ok := faultexp.GraphFamilyByName("smallworld")
	if !ok || fam.KUse() == "" {
		t.Fatalf("smallworld not registered with a k parameter: %v %v", fam, ok)
	}
	if len(faultexp.GraphFamilies()) < 17 {
		t.Fatalf("%d families, want ≥ 17", len(faultexp.GraphFamilies()))
	}
	g, _, err := faultexp.BuildFamily("smallworld", "48x4", 8, faultexp.NewRNG(3))
	if err != nil || g.N() != 48 || g.M() != 96 {
		t.Fatalf("BuildFamily(smallworld:48x4:8) = %v, %v", g, err)
	}
	if sw := faultexp.SmallWorld(48, 4, 8, faultexp.NewRNG(3)); sw.M() != 96 {
		t.Fatalf("SmallWorld edge count %d, want 96", sw.M())
	}
	if sc := faultexp.AddShortcuts(faultexp.Mesh(4, 4), 5, faultexp.NewRNG(1)); sc.M() != 24+5 {
		t.Fatalf("AddShortcuts added %d edges, want 5", sc.M()-24)
	}

	spec := &faultexp.SweepSpec{
		Families: []faultexp.SweepFamily{
			{Family: "torus", Size: "4x4"},
			{Family: "gnp", Size: "24x3"},
		},
		Measures: []string{"gamma"},
		Models:   []string{"iid-node", "iid-edge"},
		Rates:    []float64{0, 0.2},
		Trials:   2,
		Seed:     11,
	}
	var want bytes.Buffer
	if _, err := faultexp.RunSweep(spec, faultexp.NewSweepJSONL(&want), 2); err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	const m = 2
	shards := make([]bytes.Buffer, m)
	for i := 0; i < m; i++ {
		sh, err := faultexp.ParseSweepShard(fmt.Sprintf("%d/%d", i, m))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := faultexp.RunSweepOpt(spec, faultexp.NewSweepJSONL(&shards[i]),
			faultexp.SweepOptions{Workers: 2, Shard: sh}); err != nil {
			t.Fatalf("RunSweepOpt(shard %d): %v", i, err)
		}
	}
	var got bytes.Buffer
	n, err := faultexp.MergeSweepShards(
		[]io.Reader{bytes.NewReader(shards[0].Bytes()), bytes.NewReader(shards[1].Bytes())}, &got, nil, spec)
	if err != nil || n != 8 {
		t.Fatalf("MergeSweepShards = %d, %v; want 8 records", n, err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("merged shards differ from unsharded run:\n--- want ---\n%s\n--- got ---\n%s", want.Bytes(), got.Bytes())
	}
}

// TestPublicSweepJob drives the exported Job surface the way README's
// Job API section shows it: construct, start, observe, cancel, resume —
// with the cancelled-then-resumed output byte-identical to a clean run.
func TestPublicSweepJob(t *testing.T) {
	spec := func() *faultexp.SweepSpec {
		return &faultexp.SweepSpec{
			Families: []faultexp.SweepFamily{
				{Family: "torus", Size: "8x8"},
				{Family: "hypercube", Size: "5"},
			},
			Measures: []string{"gamma"},
			Models:   []string{"iid-node"},
			Rates:    []float64{0, 0.1, 0.2, 0.3},
			Trials:   5,
			Seed:     17,
		}
	}

	// Clean run through the Job API.
	var want bytes.Buffer
	job, err := faultexp.NewSweepJob(spec(), faultexp.SweepJobWriter(faultexp.NewSweepJSONL(&want)))
	if err != nil {
		t.Fatalf("NewSweepJob: %v", err)
	}
	if s := job.Snapshot(); s.State != faultexp.SweepJobPending || s.CellsTotal != 8 {
		t.Fatalf("pending snapshot = %+v", s)
	}
	if err := job.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := job.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if s := job.Snapshot(); s.State != faultexp.SweepJobDone || s.CellsDone != 8 || s.TrialsDone != 40 {
		t.Fatalf("done snapshot = %+v", s)
	}

	// Cancel mid-run, then resume to byte identity.
	var buf bytes.Buffer
	var cj *faultexp.SweepJob
	var once sync.Once
	cj, err = faultexp.NewSweepJob(spec(),
		faultexp.SweepJobWriter(faultexp.NewSweepJSONL(&buf)),
		faultexp.SweepJobWorkers(1),
		faultexp.SweepJobProgress(func(done, total int) {
			if done >= 2 {
				once.Do(cj.Cancel)
			}
		}))
	if err != nil {
		t.Fatalf("NewSweepJob(cancel): %v", err)
	}
	if err := cj.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	sum, werr := cj.Wait()
	if werr == nil || !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancelled Wait = %v, want context.Canceled", werr)
	}
	if s := cj.Snapshot(); s.State != faultexp.SweepJobCancelled {
		t.Fatalf("cancelled snapshot = %+v", s)
	}
	st, err := faultexp.ScanSweepResume(bytes.NewReader(buf.Bytes()), spec(), faultexp.SweepShard{})
	if err != nil || st.Done != sum.Cells {
		t.Fatalf("ScanSweepResume = %+v, %v (want %d clean cells)", st, err, sum.Cells)
	}
	rj, err := faultexp.NewSweepJob(spec(),
		faultexp.SweepJobWriter(faultexp.NewSweepJSONL(&buf)),
		faultexp.SweepJobSkipCells(st.Done))
	if err != nil {
		t.Fatalf("NewSweepJob(resume): %v", err)
	}
	if err := rj.Start(context.Background()); err != nil {
		t.Fatalf("Start(resume): %v", err)
	}
	if _, err := rj.Wait(); err != nil {
		t.Fatalf("Wait(resume): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want.Bytes()) {
		t.Errorf("cancelled+resumed differs from clean run:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want.Bytes())
	}
}
