module faultexp

go 1.22
